//! Lowering: scheduled TE graph → [`PrimFunc`] loop nests.

use crate::buffer::Buffer;
use crate::stmt::{ForKind, PrimFunc, Stmt};
use std::collections::HashMap;
use std::sync::Arc;
use tvm_te::schedule::{IterVarAttr, Stage};
use tvm_te::visitor::substitute;
use tvm_te::{Combiner, DType, OpKind, PrimExpr, Schedule, Tensor, Var};

/// Options controlling the lowering pipeline.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Run algebraic simplification after lowering.
    pub simplify: bool,
    /// Expand `Unrolled` loops (up to `max_unroll` iterations).
    pub unroll: bool,
    /// Cap on unrolled trip count; larger loops stay rolled.
    pub max_unroll: i64,
    /// Run the structural verifier (recommended; cheap).
    pub verify: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            simplify: true,
            unroll: true,
            max_unroll: 256,
            verify: true,
        }
    }
}

/// Lower with default [`LowerOptions`].
///
/// `args` fixes the parameter order of the resulting function (the calling
/// convention for `tvm_runtime`); any computed tensor not listed becomes an
/// internal allocation.
pub fn lower(schedule: &Schedule, args: &[Tensor], name: &str) -> PrimFunc {
    lower_with_options(schedule, args, name, LowerOptions::default())
}

/// Lower a scheduled graph into a [`PrimFunc`].
///
/// # Panics
/// If an output of the schedule is missing from `args`, or a stage has an
/// unsupported structure (e.g. placeholder listed as a stage).
pub fn lower_with_options(
    schedule: &Schedule,
    args: &[Tensor],
    name: &str,
    opts: LowerOptions,
) -> PrimFunc {
    for out in &schedule.outputs {
        assert!(
            args.iter().any(|a| a.same_as(out)),
            "schedule output `{}` missing from lowering args",
            out.name()
        );
    }

    // Buffer per argument tensor, in caller order.
    let mut buf_of: HashMap<u64, Arc<Buffer>> = HashMap::new();
    let mut params: Vec<Arc<Buffer>> = Vec::new();
    for a in args {
        let b = Buffer::from_tensor(a);
        buf_of.insert(a.op.id, b.clone());
        params.push(b);
    }
    // Intermediate stages not exposed as params get internal allocations.
    let mut allocs: Vec<Arc<Buffer>> = Vec::new();
    for st in &schedule.stages {
        let t = &st.tensor;
        if let std::collections::hash_map::Entry::Vacant(e) = buf_of.entry(t.op.id) {
            let b = Buffer::from_tensor(t);
            e.insert(b.clone());
            allocs.push(b);
        }
    }

    // Stages attached via `compute_at`, grouped by consumer op id.
    let mut attached: HashMap<u64, Vec<&Stage>> = HashMap::new();
    for st in &schedule.stages {
        if let tvm_te::AttachType::At { consumer, .. } = &st.attach {
            attached.entry(*consumer).or_default().push(st);
        }
    }

    let mut body = Stmt::Nop;
    for st in &schedule.stages {
        if st.is_attached() {
            continue;
        }
        let inner = attached
            .get(&st.tensor.op.id)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        body = body.then(lower_stage(st, &buf_of, inner));
    }

    let mut func = PrimFunc {
        name: name.to_string(),
        params,
        allocs,
        body,
    };

    if opts.simplify {
        func.body = crate::passes::simplify::simplify_stmt(&func.body);
    }
    if opts.unroll {
        func.body = crate::passes::unroll::unroll_loops(&func.body, opts.max_unroll);
        if opts.simplify {
            func.body = crate::passes::simplify::simplify_stmt(&func.body);
        }
    }
    func.body = crate::passes::vectorize::legalize_vector_loops(&func.body);
    if opts.verify {
        crate::passes::verify::verify(&func).expect("lowered function failed verification");
    }
    func
}

fn identity_expr(c: Combiner, dtype: DType) -> PrimExpr {
    if dtype.is_float() {
        PrimExpr::FloatImm(c.identity_f64(), dtype)
    } else {
        let v = match c {
            Combiner::Sum => 0,
            Combiner::Prod => 1,
            Combiner::Max => i64::MIN,
            Combiner::Min => i64::MAX,
        };
        PrimExpr::IntImm(v, dtype)
    }
}

/// Combine helper shared with the `compute_at` emitter.
pub(crate) fn combine_expr_pub(c: Combiner, acc: PrimExpr, x: PrimExpr) -> PrimExpr {
    combine_expr(c, acc, x)
}

fn combine_expr(c: Combiner, acc: PrimExpr, x: PrimExpr) -> PrimExpr {
    use tvm_te::BinOp;
    let op = match c {
        Combiner::Sum => BinOp::Add,
        Combiner::Prod => BinOp::Mul,
        Combiner::Max => BinOp::Max,
        Combiner::Min => BinOp::Min,
    };
    PrimExpr::binary(op, acc, x)
}

fn lower_stage(stage: &Stage, buf_of: &HashMap<u64, Arc<Buffer>>, attached: &[&Stage]) -> Stmt {
    let tensor = &stage.tensor;
    let out_buf = buf_of
        .get(&tensor.op.id)
        .expect("stage buffer allocated")
        .clone();
    let (axes, body) = match &tensor.op.kind {
        OpKind::Compute { axes, body, .. } => (axes.clone(), body.clone()),
        OpKind::Placeholder => panic!("placeholder cannot be a stage"),
    };

    let (bindings, guards) = stage.axis_bindings();
    let subst = |e: &PrimExpr| substitute(e, &bindings);

    // Output element indices in terms of leaf loop vars.
    let out_idx: Vec<PrimExpr> = axes.iter().map(|ax| subst(&ax.var_expr())).collect();
    let substituted_value = match &body {
        PrimExpr::Reduce { source, .. } => subst(source),
        other => subst(other),
    };

    let mut stmt = match &body {
        PrimExpr::Reduce { combiner, .. } => {
            let read_out = PrimExpr::TensorRead(tensor.clone(), out_idx.clone());
            let update_val = combine_expr(*combiner, read_out, substituted_value.clone());
            Stmt::BufferStore {
                buffer: out_buf.clone(),
                indices: out_idx,
                value: update_val,
            }
        }
        _ => Stmt::BufferStore {
            buffer: out_buf.clone(),
            indices: out_idx,
            value: substituted_value.clone(),
        },
    };

    // Boundary guards from non-divisible splits.
    if !guards.is_empty() {
        let cond = guards
            .iter()
            .cloned()
            .reduce(tvm_te::ops::cmp::and)
            .expect("non-empty");
        stmt = Stmt::IfThenElse {
            cond,
            then: Box::new(stmt),
            else_: None,
        };
    }

    // Wrap the update in the leaf loop nest, innermost last. Producers
    // attached at a leaf are emitted at the top of that leaf's loop body.
    for (pos, leaf) in stage.leaf_iter_vars.iter().enumerate().rev() {
        for producer in attached {
            let attach_axis = match &producer.attach {
                tvm_te::AttachType::At { axis, .. } => axis,
                tvm_te::AttachType::Root => unreachable!("attached list holds At stages"),
            };
            if attach_axis.var.id == leaf.var.id {
                let region = crate::compute_at::attached_region_stmt(
                    producer,
                    stage,
                    pos,
                    &substituted_value,
                    buf_of,
                );
                stmt = region.then(stmt);
            }
        }
        let kind = match stage.attr_of(leaf) {
            Some(IterVarAttr::Parallel) => ForKind::Parallel,
            Some(IterVarAttr::Vectorize) => ForKind::Vectorized,
            Some(IterVarAttr::Unroll) => ForKind::Unrolled,
            Some(IterVarAttr::Bind(tag)) => ForKind::ThreadBinding(tag),
            None => ForKind::Serial,
        };
        stmt = Stmt::For {
            var: leaf.var.clone(),
            min: leaf.dom.min,
            extent: leaf.dom.extent,
            kind,
            body: Box::new(stmt),
        };
    }

    // Reductions need the output initialized to the combiner identity
    // before the update nest runs.
    if let PrimExpr::Reduce { combiner, .. } = &body {
        let fresh: Vec<Var> = (0..axes.len())
            .map(|d| Var::index(format!("init{d}")))
            .collect();
        let mut init = Stmt::BufferStore {
            buffer: out_buf,
            indices: fresh.iter().map(|v| v.expr()).collect(),
            value: identity_expr(*combiner, tensor.dtype()),
        };
        for (d, v) in fresh.iter().enumerate().rev() {
            init = Stmt::For {
                var: v.clone(),
                min: 0,
                extent: tensor.shape()[d] as i64,
                kind: ForKind::Serial,
                body: Box::new(init),
            };
        }
        stmt = init.then(stmt);
    }
    stmt
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::{compute, placeholder, reduce_axis, sum};

    fn matmul_sched(n: usize, tile: i64) -> (Schedule, Vec<Tensor>) {
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let c = compute([n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let mut s = Schedule::create(&[c.clone()]);
        if tile > 1 {
            let (y, x) = (c.axis(0), c.axis(1));
            let (yo, yi) = s.split(&c, &y, tile);
            let (xo, xi) = s.split(&c, &x, tile);
            s.reorder(&c, &[yo, xo, k.clone(), yi, xi]);
        }
        (s, vec![a, b, c])
    }

    #[test]
    fn lower_matmul_untiled() {
        let (s, args) = matmul_sched(8, 1);
        let f = lower(&s, &args, "matmul");
        assert_eq!(f.params.len(), 3);
        assert!(f.allocs.is_empty());
        // init (2 loops) + update (3 loops)
        assert_eq!(f.body.store_count(), 2);
        assert_eq!(f.body.loop_depth(), 3);
    }

    #[test]
    fn lower_matmul_tiled_has_five_update_loops() {
        let (s, args) = matmul_sched(16, 4);
        let f = lower(&s, &args, "matmul_tiled");
        assert_eq!(f.body.loop_depth(), 5);
        // divisible split: no guard
        let mut ifs = 0;
        f.body.walk(&mut |st| {
            if matches!(st, Stmt::IfThenElse { .. }) {
                ifs += 1;
            }
        });
        assert_eq!(ifs, 0);
    }

    #[test]
    fn lower_nondivisible_split_guards() {
        let a = placeholder([10], DType::F32, "A");
        let b = compute([10], "B", |i| a.at(&[i[0].clone()]) + 1i64);
        let mut s = Schedule::create(&[b.clone()]);
        let x = b.axis(0);
        let _ = s.split(&b, &x, 3);
        let f = lower(&s, &[a, b], "guarded");
        let mut ifs = 0;
        f.body.walk(&mut |st| {
            if matches!(st, Stmt::IfThenElse { .. }) {
                ifs += 1;
            }
        });
        assert_eq!(ifs, 1, "expected one boundary guard");
    }

    #[test]
    fn intermediate_tensor_gets_alloc() {
        let a = placeholder([4], DType::F32, "A");
        let t = compute([4], "T", |i| a.at(&[i[0].clone()]) * 2i64);
        let o = compute([4], "O", |i| t.at(&[i[0].clone()]) + 1i64);
        let s = Schedule::create(&[o.clone()]);
        let f = lower(&s, &[a, o], "chain");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.allocs.len(), 1);
        assert_eq!(f.allocs[0].name, "T");
    }

    #[test]
    #[should_panic(expected = "missing from lowering args")]
    fn output_must_be_arg() {
        let a = placeholder([4], DType::F32, "A");
        let b = compute([4], "B", |i| a.at(&[i[0].clone()]));
        let s = Schedule::create(&[b]);
        let _ = lower(&s, &[a], "bad");
    }

    #[test]
    fn parallel_annotation_reaches_forkind() {
        let a = placeholder([8, 8], DType::F32, "A");
        let b = compute([8, 8], "B", |i| a.at(&[i[0].clone(), i[1].clone()]));
        let mut s = Schedule::create(&[b.clone()]);
        let y = b.axis(0);
        s.parallel(&b, &y);
        let f = lower(&s, &[a, b], "par");
        let mut found = false;
        f.body.walk(&mut |st| {
            if let Stmt::For { kind, .. } = st {
                if *kind == ForKind::Parallel {
                    found = true;
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn unroll_pass_expands_small_loop() {
        let a = placeholder([8], DType::F32, "A");
        let b = compute([8], "B", |i| a.at(&[i[0].clone()]) + 1i64);
        let mut s = Schedule::create(&[b.clone()]);
        let x = b.axis(0);
        let (_, xi) = s.split(&b, &x, 4);
        s.unroll(&b, &xi);
        let f = lower(&s, &[a, b], "unrolled");
        // Inner loop of extent 4 expanded: 4 stores under the outer loop.
        assert_eq!(f.body.store_count(), 4);
    }
}
