//! Loop-invariant code motion, realized as guard unswitching.
//!
//! Non-divisible `split` factors lower to a guard
//! `if reconstructed_index < original_extent { store }` placed at the
//! innermost position, so the whole conjunction is re-evaluated per
//! element even though parts of it only mention *outer* loop variables.
//! This pass hoists those invariant conjuncts out of the loop:
//!
//! ```text
//! for i { if inv && dep(i) { S } }   ⇒   if inv { for i { if dep(i) { S } } }
//! ```
//!
//! The transformation is exact under two conditions, both enforced:
//!
//! 1. **Every** conjunct of the guard is pure (no division that could
//!    trap, no tensor reads). Hoisting changes how often and in which
//!    short-circuit position conjuncts are evaluated; for pure
//!    expressions that is unobservable, while a trapping conjunct could
//!    otherwise be skipped or duplicated.
//! 2. The hoisted conjuncts do not mention the loop variable (they may
//!    mention any enclosing one — recursion hoists them further).
//!
//! `Parallel` and thread-bound loops are left untouched: the static
//! race analyzer (`crate::analyze`) reasons about the guard structure
//! *inside* such loops, and restructuring them would perturb verdicts
//! for no measurable gain (the guard runs once per chunk, not per lane).

use crate::stmt::{ForKind, Stmt};
use tvm_te::expr::BinOp;
use tvm_te::visitor::walk;
use tvm_te::PrimExpr;

/// True when evaluating `e` can never raise a runtime error: no tensor
/// reads, no residual reductions, and no integer division whose divisor
/// is not a nonzero constant.
pub fn is_pure(e: &PrimExpr) -> bool {
    let mut pure = true;
    walk(e, &mut |node| match node {
        PrimExpr::TensorRead(..) | PrimExpr::Reduce { .. } => pure = false,
        PrimExpr::Binary(BinOp::Div | BinOp::FloorDiv | BinOp::FloorMod, _, b)
            if !node.dtype().is_float() =>
        {
            match b.as_int() {
                Some(c) if c != 0 => {}
                _ => pure = false,
            }
        }
        _ => {}
    });
    pure
}

fn references(e: &PrimExpr, var_id: u64) -> bool {
    let mut found = false;
    walk(e, &mut |node| {
        if matches!(node, PrimExpr::Var(v) if v.id == var_id) {
            found = true;
        }
    });
    found
}

/// Flatten a guard into its `&&`-chain conjuncts, left to right.
fn conjuncts(e: &PrimExpr, out: &mut Vec<PrimExpr>) {
    if let PrimExpr::And(a, b) = e {
        conjuncts(a, out);
        conjuncts(b, out);
    } else {
        out.push(e.clone());
    }
}

fn conjoin(parts: &[PrimExpr]) -> PrimExpr {
    let mut it = parts.iter().cloned();
    let first = it.next().expect("non-empty conjunction");
    it.fold(first, |acc, c| {
        PrimExpr::And(std::sync::Arc::new(acc), std::sync::Arc::new(c))
    })
}

/// Hoist invariant guard conjuncts out of loops, bottom-up (so a fully
/// invariant guard bubbles out of an entire nest).
pub fn hoist_invariant_guards(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            let body = hoist_invariant_guards(body);
            let hoistable_kind = matches!(
                kind,
                ForKind::Serial | ForKind::Vectorized | ForKind::Unrolled
            );
            if let (
                true,
                Stmt::IfThenElse {
                    cond,
                    then,
                    else_: None,
                },
            ) = (hoistable_kind, &body)
            {
                let mut parts = Vec::new();
                conjuncts(cond, &mut parts);
                if parts.iter().all(is_pure) {
                    let (inv, dep): (Vec<_>, Vec<_>) =
                        parts.into_iter().partition(|c| !references(c, var.id));
                    if !inv.is_empty() {
                        let inner_body = if dep.is_empty() {
                            (**then).clone()
                        } else {
                            Stmt::IfThenElse {
                                cond: conjoin(&dep),
                                then: then.clone(),
                                else_: None,
                            }
                        };
                        return Stmt::IfThenElse {
                            cond: conjoin(&inv),
                            then: Box::new(Stmt::For {
                                var: var.clone(),
                                min: *min,
                                extent: *extent,
                                kind: *kind,
                                body: Box::new(inner_body),
                            }),
                            else_: None,
                        };
                    }
                }
            }
            Stmt::For {
                var: var.clone(),
                min: *min,
                extent: *extent,
                kind: *kind,
                body: Box::new(body),
            }
        }
        Stmt::IfThenElse { cond, then, else_ } => Stmt::IfThenElse {
            cond: cond.clone(),
            then: Box::new(hoist_invariant_guards(then)),
            else_: else_.as_ref().map(|e| Box::new(hoist_invariant_guards(e))),
        },
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(hoist_invariant_guards).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use tvm_te::ops::cmp;
    use tvm_te::ops::int;
    use tvm_te::{DType, Var};

    fn store(b: &std::sync::Arc<Buffer>, idx: PrimExpr) -> Stmt {
        Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![idx],
            value: int(0),
        }
    }

    fn for_loop(v: &Var, extent: i64, kind: ForKind, body: Stmt) -> Stmt {
        Stmt::For {
            var: v.clone(),
            min: 0,
            extent,
            kind,
            body: Box::new(body),
        }
    }

    #[test]
    fn hoists_outer_only_conjunct_out_of_inner_loop() {
        // for i { for j { if (i < 3 && j < 5) { S } } }
        //   ⇒ for i { if i < 3 { for j { if j < 5 { S } } } }
        let i = Var::index("i");
        let j = Var::index("j");
        let b = Buffer::new("b", [64usize], DType::F32);
        let guard = PrimExpr::And(
            std::sync::Arc::new(cmp::lt(i.expr(), int(3))),
            std::sync::Arc::new(cmp::lt(j.expr(), int(5))),
        );
        let nest = for_loop(
            &i,
            4,
            ForKind::Serial,
            for_loop(
                &j,
                8,
                ForKind::Serial,
                Stmt::IfThenElse {
                    cond: guard,
                    then: Box::new(store(&b, i.expr() * int(8) + j.expr())),
                    else_: None,
                },
            ),
        );
        let out = hoist_invariant_guards(&nest);
        match out {
            Stmt::For { body, .. } => match *body {
                Stmt::IfThenElse { cond, then, .. } => {
                    assert!(!references(&cond, j.id), "hoisted guard mentions j");
                    assert!(references(&cond, i.id));
                    assert!(matches!(*then, Stmt::For { .. }));
                }
                other => panic!("expected hoisted If, got {other:?}"),
            },
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn fully_invariant_guard_exits_the_nest() {
        // A conjunct mentioning neither i nor j climbs out of both loops.
        let i = Var::index("i");
        let j = Var::index("j");
        let k = Var::index("k");
        let b = Buffer::new("b", [64usize], DType::F32);
        let nest = for_loop(
            &k,
            2,
            ForKind::Serial,
            for_loop(
                &i,
                4,
                ForKind::Serial,
                for_loop(
                    &j,
                    8,
                    ForKind::Serial,
                    Stmt::IfThenElse {
                        cond: cmp::lt(k.expr(), int(1)),
                        then: Box::new(store(&b, j.expr())),
                        else_: None,
                    },
                ),
            ),
        );
        let out = hoist_invariant_guards(&nest);
        // Guard must now sit directly under the k loop.
        match out {
            Stmt::For { var, body, .. } => {
                assert_eq!(var.id, k.id);
                assert!(matches!(*body, Stmt::IfThenElse { .. }));
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn parallel_loops_are_left_alone() {
        let i = Var::index("i");
        let j = Var::index("j");
        let b = Buffer::new("b", [64usize], DType::F32);
        let nest = for_loop(
            &i,
            4,
            ForKind::Serial,
            for_loop(
                &j,
                8,
                ForKind::Parallel,
                Stmt::IfThenElse {
                    cond: cmp::lt(i.expr(), int(3)),
                    then: Box::new(store(&b, j.expr())),
                    else_: None,
                },
            ),
        );
        let out = hoist_invariant_guards(&nest);
        match out {
            Stmt::For { body, .. } => {
                assert!(
                    matches!(
                        *body,
                        Stmt::For {
                            kind: ForKind::Parallel,
                            ..
                        }
                    ),
                    "guard must stay inside the parallel loop"
                );
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn failable_conjunct_blocks_hoisting() {
        // floordiv by a variable could trap: the guard must not move.
        let i = Var::index("i");
        let n = Var::index("n");
        let b = Buffer::new("b", [64usize], DType::F32);
        let failable = cmp::lt(tvm_te::ops::floordiv(int(4), n.expr()), int(3));
        let nest = for_loop(
            &n,
            4,
            ForKind::Serial,
            for_loop(
                &i,
                8,
                ForKind::Serial,
                Stmt::IfThenElse {
                    cond: failable,
                    then: Box::new(store(&b, i.expr())),
                    else_: None,
                },
            ),
        );
        let out = hoist_invariant_guards(&nest);
        match out {
            Stmt::For { body, .. } => {
                assert!(matches!(*body, Stmt::For { .. }), "must not unswitch");
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn purity_classifier() {
        let i = Var::index("i");
        assert!(is_pure(&(i.expr() * int(3) + int(1))));
        assert!(is_pure(&tvm_te::ops::floordiv(i.expr(), int(4))));
        assert!(!is_pure(&tvm_te::ops::floordiv(int(4), i.expr())));
        // Float division never traps.
        let x = Var::new("x", DType::F64);
        let div = PrimExpr::binary(BinOp::Div, PrimExpr::from(1.0f64), x.expr());
        assert!(is_pure(&div));
    }
}
