//! The optimization pass pipeline run between lowering and bytecode
//! compilation.
//!
//! [`optimize`] applies, in order: strength reduction
//! ([`super::strength`]), a simplification sweep (folds guards the
//! reduction proved constant), guard unswitching LICM
//! ([`super::licm`]), and a final simplification. After **every** pass
//! the structural verifier ([`super::verify`]) re-checks the function;
//! a pass that produces ill-formed IR aborts the pipeline with a
//! [`PipelineError`] naming the offending pass, and callers fall back
//! to the unoptimized function rather than run wrong code.
//!
//! Set the `TVM_DUMP_TIR` environment variable (to anything but `0` or
//! the empty string) — or call [`PassManager::with_dump`] — to print
//! the IR before and after each pass to stderr via `tir::printer`.

use super::{licm, simplify, strength, verify};
use crate::stmt::{PrimFunc, Stmt};
use std::fmt;

/// Version tag of the optimization pipeline. Any change to the pass
/// list, pass ordering, or the semantics of an individual pass must
/// bump this string: it is folded into engine fingerprints so memoized
/// compile results and measurement journals are never silently reused
/// across pipeline changes.
pub const PIPELINE_VERSION: &str = "tir-opt/v1";

/// A pipeline failure: the named pass produced IR the verifier rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// Name of the pass whose output failed verification.
    pub pass: &'static str,
    /// The structural defect found.
    pub error: verify::VerifyError,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass `{}` produced invalid IR: {}",
            self.pass, self.error
        )
    }
}

impl std::error::Error for PipelineError {}

/// IR snapshots around one pass application, for `--dump-tir` style
/// debugging and tests.
#[derive(Debug, Clone)]
pub struct PassTrace {
    /// Pass name.
    pub pass: &'static str,
    /// Rendered IR before the pass.
    pub before: String,
    /// Rendered IR after the pass.
    pub after: String,
    /// Whether the pass changed the function body.
    pub changed: bool,
}

type PassFn = fn(&Stmt) -> Stmt;

/// An ordered list of statement-level passes with per-pass
/// verification.
pub struct PassManager {
    passes: Vec<(&'static str, PassFn)>,
    verify_each: bool,
    dump: bool,
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager {
            passes: vec![
                ("strength-reduce", strength::strength_reduce_stmt),
                ("simplify", simplify::simplify_stmt),
                ("licm", licm::hoist_invariant_guards),
                ("simplify-final", simplify::simplify_stmt),
            ],
            verify_each: true,
            dump: dump_from_env(),
        }
    }
}

fn dump_from_env() -> bool {
    std::env::var_os("TVM_DUMP_TIR").is_some_and(|v| !v.is_empty() && v != *"0")
}

impl PassManager {
    /// An empty pass manager (useful for tests composing custom lists).
    pub fn empty() -> Self {
        PassManager {
            passes: vec![],
            verify_each: true,
            dump: dump_from_env(),
        }
    }

    /// Append a named pass.
    pub fn add_pass(mut self, name: &'static str, pass: PassFn) -> Self {
        self.passes.push((name, pass));
        self
    }

    /// Enable or disable before/after IR dumping to stderr
    /// (overrides the `TVM_DUMP_TIR` environment variable).
    pub fn with_dump(mut self, dump: bool) -> Self {
        self.dump = dump;
        self
    }

    /// Enable or disable per-pass verification (on by default).
    pub fn with_verify(mut self, verify_each: bool) -> Self {
        self.verify_each = verify_each;
        self
    }

    /// Run the pipeline, collecting a [`PassTrace`] per pass.
    pub fn run_traced(&self, func: &PrimFunc) -> Result<(PrimFunc, Vec<PassTrace>), PipelineError> {
        let mut cur = func.clone();
        let mut traces = Vec::with_capacity(self.passes.len());
        for (name, pass) in &self.passes {
            let before = cur.body.to_string();
            let new_body = pass(&cur.body);
            cur = PrimFunc {
                name: cur.name.clone(),
                params: cur.params.clone(),
                allocs: cur.allocs.clone(),
                body: new_body,
            };
            if self.verify_each {
                if let Err(error) = verify::verify(&cur) {
                    return Err(PipelineError { pass: name, error });
                }
            }
            let after = cur.body.to_string();
            let changed = before != after;
            traces.push(PassTrace {
                pass: name,
                before,
                after,
                changed,
            });
        }
        Ok((cur, traces))
    }

    /// Run the pipeline; dump per-pass IR to stderr when enabled.
    pub fn run(&self, func: &PrimFunc) -> Result<PrimFunc, PipelineError> {
        let (out, traces) = self.run_traced(func)?;
        if self.dump {
            for t in &traces {
                eprintln!(
                    "=== [{}] pass `{}` ({}) ===",
                    func.name,
                    t.pass,
                    if t.changed { "changed" } else { "no change" }
                );
                if t.changed {
                    eprintln!("--- before ---\n{}--- after ---\n{}", t.before, t.after);
                }
            }
        }
        Ok(out)
    }
}

/// Run the default optimization pipeline on a lowered function.
pub fn optimize(func: &PrimFunc) -> Result<PrimFunc, PipelineError> {
    PassManager::default().run(func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule};

    fn matmul_func(split: i64) -> PrimFunc {
        let a = placeholder([8, 8], DType::F32, "A");
        let b = placeholder([8, 8], DType::F32, "B");
        let k = reduce_axis(0, 8, "k");
        let c = compute([8, 8], "C", {
            let (a, b, k) = (a.clone(), b.clone(), k.clone());
            move |i| {
                sum(
                    a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                    &[k.clone()],
                )
            }
        });
        let mut s = Schedule::create(&[c.clone()]);
        let axes = (0..2).map(|d| c.axis(d)).collect::<Vec<_>>();
        let (xo, xi) = s.split(&c, &axes[1], split);
        let fused = s.fuse(&c, &xo, &xi);
        let _ = fused;
        lower(&s, &[a, b, c], "mm")
    }

    #[test]
    fn pipeline_runs_and_verifies() {
        let f = matmul_func(4);
        let (out, traces) = PassManager::default().run_traced(&f).expect("pipeline");
        assert_eq!(traces.len(), 4);
        assert!(verify::verify(&out).is_ok());
    }

    #[test]
    fn trace_reports_change_flags() {
        let f = matmul_func(3);
        let (_, traces) = PassManager::default().run_traced(&f).expect("pipeline");
        for t in &traces {
            assert_eq!(t.changed, t.before != t.after);
            assert!(!t.before.is_empty());
        }
    }

    #[test]
    fn broken_pass_is_caught_by_verification() {
        fn clobber(_: &Stmt) -> Stmt {
            // Store to a buffer the function does not know about.
            let ghost = crate::buffer::Buffer::new("ghost", [1usize], DType::F32);
            Stmt::BufferStore {
                buffer: ghost,
                indices: vec![tvm_te::ops::int(0)],
                value: tvm_te::ops::int(0),
            }
        }
        let f = matmul_func(4);
        let err = PassManager::empty()
            .add_pass("clobber", clobber)
            .run(&f)
            .expect_err("verification must fire");
        assert_eq!(err.pass, "clobber");
    }
}
