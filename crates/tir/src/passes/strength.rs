//! Strength reduction of per-iteration index arithmetic.
//!
//! `fuse` reconstruction leaves `floordiv(fused, n)` / `floormod(fused, n)`
//! in every index expression of the fused nest, evaluated once per
//! element. When the numerator is affine in the enclosing loop variables
//! and the euclidean remainder is provably confined to `[0, n)`, both
//! operations collapse to plain affine arithmetic
//! ([`Affine::div_rem`](super::affine::Affine::div_rem)) — which the
//! bytecode compiler then hoists or turns into strided pointer bumps.
//!
//! The pass also folds comparisons whose outcome the affine intervals
//! decide (e.g. residual guards on provably in-range indices). Every
//! rewrite replaces a **pure** subexpression with a pure equivalent, so
//! evaluation order, short-circuiting and error behavior are untouched:
//! affine forms contain only variables, constants, `+`, `-`, `*` — no
//! division that could trap, no tensor reads.

use super::affine::{affine_of, VarRanges};
use crate::stmt::{PrimFunc, Stmt};
use tvm_te::expr::{BinOp, CmpOp};
use tvm_te::visitor::rewrite;
use tvm_te::PrimExpr;

fn cmp_decided(op: CmpOp, (alo, ahi): (i64, i64), (blo, bhi): (i64, i64)) -> Option<bool> {
    match op {
        CmpOp::Lt => {
            if ahi < blo {
                Some(true)
            } else if alo >= bhi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Le => {
            if ahi <= blo {
                Some(true)
            } else if alo > bhi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => cmp_decided(CmpOp::Le, (alo, ahi), (blo, bhi)).map(|b| !b),
        CmpOp::Ge => cmp_decided(CmpOp::Lt, (alo, ahi), (blo, bhi)).map(|b| !b),
        CmpOp::Eq => {
            if alo == ahi && blo == bhi && alo == blo {
                Some(true)
            } else if ahi < blo || bhi < alo {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ne => cmp_decided(CmpOp::Eq, (alo, ahi), (blo, bhi)).map(|b| !b),
    }
}

/// Rewrite one expression bottom-up under the given variable ranges.
pub fn reduce_expr(e: &PrimExpr, ranges: &VarRanges) -> PrimExpr {
    rewrite(e, &mut |node| match node {
        PrimExpr::Binary(op @ (BinOp::FloorDiv | BinOp::FloorMod | BinOp::Div), a, b)
            if !node.dtype().is_float() =>
        {
            let c = b.as_int()?;
            let num = affine_of(a, ranges)?;
            if *op == BinOp::Div {
                // Truncated division: only agrees with floordiv when the
                // numerator is provably non-negative.
                let (lo, _) = num.interval(ranges)?;
                if lo < 0 {
                    return None;
                }
            }
            let (q, r) = num.div_rem(c, ranges)?;
            let reduced = if *op == BinOp::FloorMod { r } else { q };
            Some(reduced.to_expr())
        }
        PrimExpr::Cmp(op, a, b) => {
            let ia = affine_of(a, ranges)?.interval(ranges)?;
            let ib = affine_of(b, ranges)?.interval(ranges)?;
            cmp_decided(*op, ia, ib).map(PrimExpr::BoolImm)
        }
        _ => None,
    })
}

fn reduce_stmt(stmt: &Stmt, ranges: &mut VarRanges) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            // `verify` rejects shadowing and non-positive extents, but be
            // defensive: preserve any outer binding across the recursion.
            let prev = ranges.insert(var.id, (*min, min + (extent - 1).max(0)));
            let new_body = reduce_stmt(body, ranges);
            match prev {
                Some(p) => {
                    ranges.insert(var.id, p);
                }
                None => {
                    ranges.remove(&var.id);
                }
            }
            Stmt::For {
                var: var.clone(),
                min: *min,
                extent: *extent,
                kind: *kind,
                body: Box::new(new_body),
            }
        }
        Stmt::BufferStore {
            buffer,
            indices,
            value,
        } => Stmt::BufferStore {
            buffer: buffer.clone(),
            indices: indices.iter().map(|i| reduce_expr(i, ranges)).collect(),
            value: reduce_expr(value, ranges),
        },
        Stmt::IfThenElse { cond, then, else_ } => Stmt::IfThenElse {
            cond: reduce_expr(cond, ranges),
            then: Box::new(reduce_stmt(then, ranges)),
            else_: else_.as_ref().map(|e| Box::new(reduce_stmt(e, ranges))),
        },
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(|s| reduce_stmt(s, ranges)).collect()),
        Stmt::Evaluate(e) => Stmt::Evaluate(reduce_expr(e, ranges)),
        Stmt::Nop => Stmt::Nop,
    }
}

/// Strength-reduce every expression of a statement tree.
pub fn strength_reduce_stmt(stmt: &Stmt) -> Stmt {
    reduce_stmt(stmt, &mut VarRanges::new())
}

/// Strength-reduce a whole function (body only; signature unchanged).
pub fn strength_reduce(func: &PrimFunc) -> PrimFunc {
    PrimFunc {
        name: func.name.clone(),
        params: func.params.clone(),
        allocs: func.allocs.clone(),
        body: strength_reduce_stmt(&func.body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::stmt::ForKind;
    use tvm_te::ops::{floordiv, floormod, int};
    use tvm_te::visitor::walk;
    use tvm_te::{DType, Var};

    fn count_in_expr(e: &PrimExpr) -> usize {
        let mut n = 0;
        walk(e, &mut |node| {
            if matches!(
                node,
                PrimExpr::Binary(BinOp::FloorDiv | BinOp::FloorMod, ..)
            ) {
                n += 1;
            }
        });
        n
    }

    fn count_divmod(s: &Stmt) -> usize {
        match s {
            Stmt::BufferStore { indices, value, .. } => {
                indices.iter().map(count_in_expr).sum::<usize>() + count_in_expr(value)
            }
            Stmt::For { body, .. } => count_divmod(body),
            Stmt::IfThenElse { cond, then, else_ } => {
                count_in_expr(cond) + count_divmod(then) + else_.as_deref().map_or(0, count_divmod)
            }
            Stmt::Seq(items) => items.iter().map(count_divmod).sum(),
            _ => 0,
        }
    }

    #[test]
    fn eliminates_fuse_reconstruction() {
        // for f in [0, 12): B[floordiv(f,4), floormod(f,4)] = f
        let f = Var::index("f");
        let b = Buffer::new("b", [3usize, 4], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b,
            indices: vec![
                floordiv(f.expr() * int(1), int(4)),
                floormod(f.expr(), int(4)),
            ],
            value: f.expr(),
        };
        let nest = Stmt::For {
            var: f.clone(),
            min: 0,
            extent: 12,
            kind: ForKind::Serial,
            body: Box::new(store),
        };
        // A lone fused var cannot be decomposed (remainder unbounded)…
        let out = strength_reduce_stmt(&nest);
        assert_eq!(count_divmod(&out), 2);

        // …but the canonical split-then-fuse shape can: f = o*4 + i.
        let o = Var::index("o");
        let i = Var::index("i");
        let fused = o.expr() * int(4) + i.expr();
        let b2 = Buffer::new("b2", [3usize, 4], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b2,
            indices: vec![
                floordiv(fused.clone(), int(4)),
                floormod(fused.clone(), int(4)),
            ],
            value: int(0),
        };
        let nest = Stmt::For {
            var: o.clone(),
            min: 0,
            extent: 3,
            kind: ForKind::Serial,
            body: Box::new(Stmt::For {
                var: i.clone(),
                min: 0,
                extent: 4,
                kind: ForKind::Serial,
                body: Box::new(store),
            }),
        };
        let out = strength_reduce_stmt(&nest);
        assert_eq!(count_divmod(&out), 0, "floordiv/floormod must be gone");
    }

    #[test]
    fn folds_provable_guard() {
        // for i in [0,4): if i < 10 { store } — guard is provably true.
        let i = Var::index("i");
        let b = Buffer::new("b", [4usize], DType::F32);
        let nest = Stmt::For {
            var: i.clone(),
            min: 0,
            extent: 4,
            kind: ForKind::Serial,
            body: Box::new(Stmt::IfThenElse {
                cond: tvm_te::ops::cmp::lt(i.expr(), int(10)),
                then: Box::new(Stmt::BufferStore {
                    buffer: b,
                    indices: vec![i.expr()],
                    value: int(0),
                }),
                else_: None,
            }),
        };
        let out = strength_reduce_stmt(&nest);
        match out {
            Stmt::For { body, .. } => match *body {
                Stmt::IfThenElse { cond, .. } => {
                    assert_eq!(cond, PrimExpr::BoolImm(true));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leaves_undecidable_guard_alone() {
        // for i in [0,8): if i < 5 — depends on i, must survive.
        let i = Var::index("i");
        let b = Buffer::new("b", [8usize], DType::F32);
        let nest = Stmt::For {
            var: i.clone(),
            min: 0,
            extent: 8,
            kind: ForKind::Serial,
            body: Box::new(Stmt::IfThenElse {
                cond: tvm_te::ops::cmp::lt(i.expr(), int(5)),
                then: Box::new(Stmt::BufferStore {
                    buffer: b,
                    indices: vec![i.expr()],
                    value: int(0),
                }),
                else_: None,
            }),
        };
        let out = strength_reduce_stmt(&nest);
        match out {
            Stmt::For { body, .. } => {
                assert!(matches!(
                    *body,
                    Stmt::IfThenElse {
                        cond: PrimExpr::Cmp(..),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn float_floordiv_untouched() {
        // floordiv on floats must not be treated as integer arithmetic.
        let x = Var::new("x", DType::F64);
        let e = floordiv(x.expr(), PrimExpr::from(4.0f64));
        let out = reduce_expr(&e, &VarRanges::new());
        assert_eq!(out, e);
    }
}
