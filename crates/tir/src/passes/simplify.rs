//! Algebraic simplification and constant folding.

use crate::passes::subst_stmt;
use crate::stmt::Stmt;
use std::collections::HashMap;
use tvm_te::visitor::rewrite;
use tvm_te::{BinOp, CmpOp, DType, PrimExpr};

fn fold_int(op: BinOp, a: i64, b: i64, t: DType) -> Option<PrimExpr> {
    let v = match op {
        BinOp::Add => a.checked_add(b)?,
        BinOp::Sub => a.checked_sub(b)?,
        BinOp::Mul => a.checked_mul(b)?,
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a / b
        }
        BinOp::FloorDiv => {
            if b == 0 {
                return None;
            }
            a.div_euclid(b)
        }
        BinOp::FloorMod => {
            if b == 0 {
                return None;
            }
            a.rem_euclid(b)
        }
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    };
    Some(PrimExpr::IntImm(v, t))
}

fn fold_float(op: BinOp, a: f64, b: f64, t: DType) -> PrimExpr {
    let v = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::FloorDiv => (a / b).floor(),
        BinOp::FloorMod => a - (a / b).floor() * b,
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    };
    PrimExpr::FloatImm(v, t)
}

/// Simplify one expression: constant folding plus the identities
/// `x+0`, `x-0`, `x*1`, `x*0`, `x/1`, `floordiv(x,1)`, `floormod(x,1)`,
/// `select(const, a, b)`, and comparison folding.
pub fn simplify_expr(e: &PrimExpr) -> PrimExpr {
    rewrite(e, &mut |node| match node {
        PrimExpr::Binary(op, a, b) => {
            let t = node.dtype();
            match (&**a, &**b) {
                (PrimExpr::IntImm(x, _), PrimExpr::IntImm(y, _)) => fold_int(*op, *x, *y, t),
                (PrimExpr::FloatImm(x, _), PrimExpr::FloatImm(y, _)) => {
                    Some(fold_float(*op, *x, *y, t))
                }
                // x + 0, x - 0
                (_, PrimExpr::IntImm(0, _)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                    Some((**a).clone())
                }
                // 0 + x
                (PrimExpr::IntImm(0, _), _) if matches!(op, BinOp::Add) => Some((**b).clone()),
                // x * 1, x / 1, floordiv(x,1)
                (_, PrimExpr::IntImm(1, _))
                    if matches!(op, BinOp::Mul | BinOp::Div | BinOp::FloorDiv) =>
                {
                    Some((**a).clone())
                }
                // 1 * x
                (PrimExpr::IntImm(1, _), _) if matches!(op, BinOp::Mul) => Some((**b).clone()),
                // x * 0, 0 * x (integer only: float 0*inf is NaN)
                (_, PrimExpr::IntImm(0, t0)) if matches!(op, BinOp::Mul) && t0.is_int() => {
                    Some(PrimExpr::IntImm(0, t))
                }
                (PrimExpr::IntImm(0, t0), _) if matches!(op, BinOp::Mul) && t0.is_int() => {
                    Some(PrimExpr::IntImm(0, t))
                }
                // floormod(x, 1) == 0
                (_, PrimExpr::IntImm(1, _)) if matches!(op, BinOp::FloorMod) => {
                    Some(PrimExpr::IntImm(0, t))
                }
                _ => None,
            }
        }
        PrimExpr::Cmp(op, a, b) => match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => {
                let v = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                Some(PrimExpr::BoolImm(v))
            }
            _ => None,
        },
        PrimExpr::And(a, b) => match (&**a, &**b) {
            (PrimExpr::BoolImm(true), x) | (x, PrimExpr::BoolImm(true)) => Some(x.clone()),
            (PrimExpr::BoolImm(false), _) | (_, PrimExpr::BoolImm(false)) => {
                Some(PrimExpr::BoolImm(false))
            }
            _ => None,
        },
        PrimExpr::Or(a, b) => match (&**a, &**b) {
            (PrimExpr::BoolImm(false), x) | (x, PrimExpr::BoolImm(false)) => Some(x.clone()),
            (PrimExpr::BoolImm(true), _) | (_, PrimExpr::BoolImm(true)) => {
                Some(PrimExpr::BoolImm(true))
            }
            _ => None,
        },
        PrimExpr::Not(a) => match &**a {
            PrimExpr::BoolImm(v) => Some(PrimExpr::BoolImm(!v)),
            _ => None,
        },
        PrimExpr::Select(c, t, f) => match &**c {
            PrimExpr::BoolImm(true) => Some((**t).clone()),
            PrimExpr::BoolImm(false) => Some((**f).clone()),
            _ => None,
        },
        PrimExpr::Cast(t, a) => match &**a {
            PrimExpr::IntImm(v, _) if t.is_int() => Some(PrimExpr::IntImm(*v, *t)),
            PrimExpr::IntImm(v, _) if t.is_float() => Some(PrimExpr::FloatImm(*v as f64, *t)),
            PrimExpr::FloatImm(v, _) if t.is_float() => Some(PrimExpr::FloatImm(*v, *t)),
            PrimExpr::FloatImm(v, _) if t.is_int() => Some(PrimExpr::IntImm(*v as i64, *t)),
            _ => None,
        },
        _ => None,
    })
}

/// Simplify a statement tree: fold expressions, drop empty loops, inline
/// single-iteration loops, prune constant conditionals, flatten sequences.
pub fn simplify_stmt(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            if *extent == 0 {
                return Stmt::Nop;
            }
            let body = simplify_stmt(body);
            if matches!(body, Stmt::Nop) {
                return Stmt::Nop;
            }
            if *extent == 1 {
                let mut map = HashMap::new();
                map.insert(var.id, PrimExpr::from(*min));
                return simplify_stmt(&subst_stmt(&body, &map));
            }
            Stmt::For {
                var: var.clone(),
                min: *min,
                extent: *extent,
                kind: *kind,
                body: Box::new(body),
            }
        }
        Stmt::BufferStore {
            buffer,
            indices,
            value,
        } => Stmt::BufferStore {
            buffer: buffer.clone(),
            indices: indices.iter().map(simplify_expr).collect(),
            value: simplify_expr(value),
        },
        Stmt::IfThenElse { cond, then, else_ } => {
            let cond = simplify_expr(cond);
            match cond {
                PrimExpr::BoolImm(true) => simplify_stmt(then),
                PrimExpr::BoolImm(false) => else_
                    .as_ref()
                    .map(|e| simplify_stmt(e))
                    .unwrap_or(Stmt::Nop),
                cond => Stmt::IfThenElse {
                    cond,
                    then: Box::new(simplify_stmt(then)),
                    else_: else_.as_ref().map(|e| Box::new(simplify_stmt(e))),
                },
            }
        }
        Stmt::Seq(items) => {
            let mut out: Vec<Stmt> = Vec::with_capacity(items.len());
            for s in items {
                match simplify_stmt(s) {
                    Stmt::Nop => {}
                    Stmt::Seq(inner) => out.extend(inner),
                    s => out.push(s),
                }
            }
            match out.len() {
                0 => Stmt::Nop,
                1 => out.pop().expect("len 1"),
                _ => Stmt::Seq(out),
            }
        }
        Stmt::Evaluate(e) => Stmt::Evaluate(simplify_expr(e)),
        Stmt::Nop => Stmt::Nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::stmt::ForKind;
    use tvm_te::ops::{cmp, floordiv, floormod, int};
    use tvm_te::Var;

    #[test]
    fn folds_constants() {
        let e = simplify_expr(&(int(2) * 3 + 4));
        assert_eq!(e.as_int(), Some(10));
        let e = simplify_expr(&floordiv(int(-7), int(2)));
        assert_eq!(e.as_int(), Some(-4), "floor division is euclidean");
        let e = simplify_expr(&floormod(int(-7), int(2)));
        assert_eq!(e.as_int(), Some(1));
    }

    #[test]
    fn identities() {
        let v = Var::index("i");
        assert_eq!(simplify_expr(&(v.expr() + 0)), v.expr());
        assert_eq!(simplify_expr(&(v.expr() * 1)), v.expr());
        assert_eq!(simplify_expr(&(v.expr() * 0)).as_int(), Some(0));
        assert_eq!(simplify_expr(&(0 + v.expr())), v.expr());
    }

    #[test]
    fn folds_cmp_and_bool() {
        assert_eq!(
            simplify_expr(&cmp::lt(int(1), int(2))),
            PrimExpr::BoolImm(true)
        );
        let v = Var::index("i");
        let e = cmp::and(PrimExpr::BoolImm(true), cmp::lt(v.expr(), int(2)));
        assert!(matches!(simplify_expr(&e), PrimExpr::Cmp(..)));
        let e = cmp::and(PrimExpr::BoolImm(false), cmp::lt(v.expr(), int(2)));
        assert_eq!(simplify_expr(&e), PrimExpr::BoolImm(false));
    }

    #[test]
    fn single_iteration_loop_inlined() {
        let i = Var::index("i");
        let b = Buffer::new("b", [4usize], tvm_te::DType::F32);
        let s = Stmt::For {
            var: i.clone(),
            min: 2,
            extent: 1,
            kind: ForKind::Serial,
            body: Box::new(Stmt::BufferStore {
                buffer: b,
                indices: vec![i.expr()],
                value: i.expr() + 1,
            }),
        };
        match simplify_stmt(&s) {
            Stmt::BufferStore { indices, value, .. } => {
                assert_eq!(indices[0].as_int(), Some(2));
                assert_eq!(value.as_int(), Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_loop_removed() {
        let i = Var::index("i");
        let s = Stmt::For {
            var: i,
            min: 0,
            extent: 0,
            kind: ForKind::Serial,
            body: Box::new(Stmt::Nop),
        };
        assert!(matches!(simplify_stmt(&s), Stmt::Nop));
    }

    #[test]
    fn constant_if_pruned() {
        let s = Stmt::IfThenElse {
            cond: cmp::lt(int(3), int(2)),
            then: Box::new(Stmt::Evaluate(int(1))),
            else_: None,
        };
        assert!(matches!(simplify_stmt(&s), Stmt::Nop));
    }

    #[test]
    fn float_zero_mul_not_folded() {
        // 0.0 * x must NOT fold to 0.0 (x could be inf/NaN)
        let v = Var::new("x", tvm_te::DType::F32);
        let e = PrimExpr::binary(BinOp::Mul, PrimExpr::FloatImm(0.0, DType::F32), v.expr());
        assert!(matches!(simplify_expr(&e), PrimExpr::Binary(..)));
    }
}
