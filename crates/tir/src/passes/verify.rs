//! Structural verification of lowered functions.

use crate::stmt::{PrimFunc, Stmt};
use std::collections::HashSet;
use std::fmt;
use tvm_te::visitor::walk;
use tvm_te::PrimExpr;

/// A structural defect found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An expression references a variable not defined by any enclosing
    /// loop.
    UndefinedVar(String),
    /// A store/read uses the wrong number of indices.
    RankMismatch {
        /// Buffer or tensor name.
        name: String,
        /// Declared rank.
        expected: usize,
        /// Indices supplied.
        got: usize,
    },
    /// A store targets a buffer that is neither a parameter nor an
    /// allocation of the function.
    UnknownBuffer(String),
    /// A tensor read has no backing buffer in the function.
    UnknownTensor(String),
    /// A reduction node survived lowering (must not appear in TIR).
    ResidualReduce,
    /// A loop re-binds a variable already bound by an enclosing loop —
    /// the inner binding would silently shadow the outer one in every
    /// index expression of its body.
    ShadowedVar(String),
    /// A loop declares a zero or negative extent; lowering must emit
    /// such loops as `Nop` (or guard them), never as a `For`.
    NonPositiveExtent {
        /// Loop variable name.
        var: String,
        /// The offending extent.
        extent: i64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UndefinedVar(n) => write!(f, "undefined variable `{n}`"),
            VerifyError::RankMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "rank mismatch on `{name}`: expected {expected}, got {got}"
            ),
            VerifyError::UnknownBuffer(n) => write!(f, "store to unknown buffer `{n}`"),
            VerifyError::UnknownTensor(n) => write!(f, "read of unknown tensor `{n}`"),
            VerifyError::ResidualReduce => write!(f, "Reduce node survived lowering"),
            VerifyError::ShadowedVar(n) => {
                write!(f, "loop variable `{n}` shadows an enclosing binding")
            }
            VerifyError::NonPositiveExtent { var, extent } => {
                write!(f, "loop over `{var}` has non-positive extent {extent}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

fn check_expr(
    e: &PrimExpr,
    defined: &HashSet<u64>,
    known_ops: &HashSet<u64>,
) -> Result<(), VerifyError> {
    let mut err = None;
    walk(e, &mut |node| {
        if err.is_some() {
            return;
        }
        match node {
            PrimExpr::Var(v) if !defined.contains(&v.id) => {
                err = Some(VerifyError::UndefinedVar(v.name.clone()));
            }
            PrimExpr::TensorRead(t, idx) => {
                if idx.len() != t.ndim() {
                    err = Some(VerifyError::RankMismatch {
                        name: t.name().to_string(),
                        expected: t.ndim(),
                        got: idx.len(),
                    });
                } else if !known_ops.contains(&t.op.id) {
                    err = Some(VerifyError::UnknownTensor(t.name().to_string()));
                }
            }
            PrimExpr::Reduce { .. } => err = Some(VerifyError::ResidualReduce),
            _ => {}
        }
    });
    err.map_or(Ok(()), Err)
}

fn check_stmt(
    s: &Stmt,
    defined: &mut HashSet<u64>,
    known_bufs: &HashSet<u64>,
    known_ops: &HashSet<u64>,
) -> Result<(), VerifyError> {
    match s {
        Stmt::For {
            var, extent, body, ..
        } => {
            if *extent <= 0 {
                return Err(VerifyError::NonPositiveExtent {
                    var: var.name.clone(),
                    extent: *extent,
                });
            }
            if !defined.insert(var.id) {
                return Err(VerifyError::ShadowedVar(var.name.clone()));
            }
            let r = check_stmt(body, defined, known_bufs, known_ops);
            defined.remove(&var.id);
            r
        }
        Stmt::BufferStore {
            buffer,
            indices,
            value,
        } => {
            if !known_bufs.contains(&buffer.id) {
                return Err(VerifyError::UnknownBuffer(buffer.name.clone()));
            }
            if indices.len() != buffer.shape.len() {
                return Err(VerifyError::RankMismatch {
                    name: buffer.name.clone(),
                    expected: buffer.shape.len(),
                    got: indices.len(),
                });
            }
            for i in indices {
                check_expr(i, defined, known_ops)?;
            }
            check_expr(value, defined, known_ops)
        }
        Stmt::IfThenElse { cond, then, else_ } => {
            check_expr(cond, defined, known_ops)?;
            check_stmt(then, defined, known_bufs, known_ops)?;
            if let Some(e) = else_ {
                check_stmt(e, defined, known_bufs, known_ops)?;
            }
            Ok(())
        }
        Stmt::Seq(items) => {
            for i in items {
                check_stmt(i, defined, known_bufs, known_ops)?;
            }
            Ok(())
        }
        Stmt::Evaluate(e) => check_expr(e, defined, known_ops),
        Stmt::Nop => Ok(()),
    }
}

/// Verify a lowered function: variable scoping (including shadowing),
/// loop extents, index ranks, buffer bindings, and absence of residual
/// `Reduce` nodes.
pub fn verify(func: &PrimFunc) -> Result<(), VerifyError> {
    let known_bufs: HashSet<u64> = func.all_buffers().iter().map(|b| b.id).collect();
    let known_ops: HashSet<u64> = func
        .all_buffers()
        .iter()
        .map(|b| b.source_op)
        .filter(|&id| id != 0)
        .collect();
    let mut defined = HashSet::new();
    check_stmt(&func.body, &mut defined, &known_bufs, &known_ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::stmt::ForKind;
    use tvm_te::ops::int;
    use tvm_te::{DType, Var};

    fn func_with_body(body: Stmt, bufs: Vec<std::sync::Arc<Buffer>>) -> PrimFunc {
        PrimFunc {
            name: "t".into(),
            params: bufs,
            allocs: vec![],
            body,
        }
    }

    #[test]
    fn detects_undefined_var() {
        let b = Buffer::new("b", [4usize], DType::F32);
        let free = Var::index("ghost");
        let f = func_with_body(
            Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![int(0)],
                value: free.expr(),
            },
            vec![b],
        );
        assert!(matches!(verify(&f), Err(VerifyError::UndefinedVar(_))));
    }

    #[test]
    fn detects_rank_mismatch() {
        let b = Buffer::new("b", [4usize, 4], DType::F32);
        let f = func_with_body(
            Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![int(0)],
                value: int(1),
            },
            vec![b],
        );
        assert!(matches!(verify(&f), Err(VerifyError::RankMismatch { .. })));
    }

    #[test]
    fn detects_unknown_buffer() {
        let known = Buffer::new("k", [4usize], DType::F32);
        let unknown = Buffer::new("u", [4usize], DType::F32);
        let f = func_with_body(
            Stmt::BufferStore {
                buffer: unknown,
                indices: vec![int(0)],
                value: int(1),
            },
            vec![known],
        );
        assert!(matches!(verify(&f), Err(VerifyError::UnknownBuffer(_))));
    }

    #[test]
    fn accepts_wellformed_loop() {
        let b = Buffer::new("b", [4usize], DType::F32);
        let i = Var::index("i");
        let f = func_with_body(
            Stmt::For {
                var: i.clone(),
                min: 0,
                extent: 4,
                kind: ForKind::Serial,
                body: Box::new(Stmt::BufferStore {
                    buffer: b.clone(),
                    indices: vec![i.expr()],
                    value: i.expr() + 1,
                }),
            },
            vec![b],
        );
        assert!(verify(&f).is_ok());
    }

    #[test]
    fn detects_shadowed_loop_var() {
        let b = Buffer::new("b", [4usize], DType::F32);
        let i = Var::index("i");
        let inner = Stmt::For {
            var: i.clone(),
            min: 0,
            extent: 4,
            kind: ForKind::Serial,
            body: Box::new(Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![i.expr()],
                value: int(0),
            }),
        };
        let f = func_with_body(
            Stmt::For {
                var: i.clone(),
                min: 0,
                extent: 4,
                kind: ForKind::Serial,
                body: Box::new(inner),
            },
            vec![b],
        );
        match verify(&f) {
            Err(VerifyError::ShadowedVar(n)) => assert_eq!(n, "i"),
            other => panic!("expected ShadowedVar, got {other:?}"),
        }
    }

    #[test]
    fn distinct_vars_with_same_name_are_not_shadowing() {
        // Two `Var::index("i")` calls mint distinct ids: nesting them is
        // legal — shadowing is an *identity* collision, not a name one.
        let b = Buffer::new("b", [4usize, 4], DType::F32);
        let outer = Var::index("i");
        let inner = Var::index("i");
        let f = func_with_body(
            Stmt::For {
                var: outer.clone(),
                min: 0,
                extent: 4,
                kind: ForKind::Serial,
                body: Box::new(Stmt::For {
                    var: inner.clone(),
                    min: 0,
                    extent: 4,
                    kind: ForKind::Serial,
                    body: Box::new(Stmt::BufferStore {
                        buffer: b.clone(),
                        indices: vec![outer.expr(), inner.expr()],
                        value: int(0),
                    }),
                }),
            },
            vec![b],
        );
        assert!(verify(&f).is_ok());
    }

    #[test]
    fn detects_non_positive_extent() {
        let b = Buffer::new("b", [4usize], DType::F32);
        for bad in [0i64, -3] {
            let i = Var::index("i");
            let f = func_with_body(
                Stmt::For {
                    var: i.clone(),
                    min: 0,
                    extent: bad,
                    kind: ForKind::Serial,
                    body: Box::new(Stmt::Nop),
                },
                vec![b.clone()],
            );
            match verify(&f) {
                Err(VerifyError::NonPositiveExtent { var, extent }) => {
                    assert_eq!(var, "i");
                    assert_eq!(extent, bad);
                }
                other => panic!("extent {bad}: expected NonPositiveExtent, got {other:?}"),
            }
        }
    }

    #[test]
    fn loop_var_scope_ends_with_loop() {
        let b = Buffer::new("b", [4usize], DType::F32);
        let i = Var::index("i");
        let loop_then_use = Stmt::Seq(vec![
            Stmt::For {
                var: i.clone(),
                min: 0,
                extent: 4,
                kind: ForKind::Serial,
                body: Box::new(Stmt::Nop),
            },
            Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![i.expr()],
                value: int(0),
            },
        ]);
        let f = func_with_body(loop_then_use, vec![b]);
        assert!(matches!(verify(&f), Err(VerifyError::UndefinedVar(_))));
    }
}
