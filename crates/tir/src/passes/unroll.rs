//! Loop unrolling: expand `ForKind::Unrolled` loops into statement
//! sequences.

use crate::passes::subst_stmt;
use crate::stmt::{ForKind, Stmt};
use std::collections::HashMap;
use tvm_te::PrimExpr;

/// Expand every `Unrolled` loop whose trip count is at most `max_unroll`.
/// Larger unroll-annotated loops are downgraded to `Serial` (mirrors TVM's
/// `auto_max_step` guard against code-size explosion).
pub fn unroll_loops(stmt: &Stmt, max_unroll: i64) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            let body = unroll_loops(body, max_unroll);
            if *kind == ForKind::Unrolled {
                if *extent <= max_unroll {
                    let mut items = Vec::with_capacity(*extent as usize);
                    for it in 0..*extent {
                        let mut map = HashMap::new();
                        map.insert(var.id, PrimExpr::from(min + it));
                        items.push(subst_stmt(&body, &map));
                    }
                    return match items.len() {
                        0 => Stmt::Nop,
                        1 => items.pop().expect("len 1"),
                        _ => Stmt::Seq(items),
                    };
                }
                return Stmt::For {
                    var: var.clone(),
                    min: *min,
                    extent: *extent,
                    kind: ForKind::Serial,
                    body: Box::new(body),
                };
            }
            Stmt::For {
                var: var.clone(),
                min: *min,
                extent: *extent,
                kind: *kind,
                body: Box::new(body),
            }
        }
        Stmt::IfThenElse { cond, then, else_ } => Stmt::IfThenElse {
            cond: cond.clone(),
            then: Box::new(unroll_loops(then, max_unroll)),
            else_: else_
                .as_ref()
                .map(|e| Box::new(unroll_loops(e, max_unroll))),
        },
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(|s| unroll_loops(s, max_unroll)).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use tvm_te::{DType, Var};

    fn unrolled_loop(extent: i64) -> Stmt {
        let i = Var::index("i");
        let b = Buffer::new("b", [64usize], DType::F32);
        Stmt::For {
            var: i.clone(),
            min: 0,
            extent,
            kind: ForKind::Unrolled,
            body: Box::new(Stmt::BufferStore {
                buffer: b,
                indices: vec![i.expr()],
                value: i.expr(),
            }),
        }
    }

    #[test]
    fn small_loop_expanded() {
        let out = unroll_loops(&unrolled_loop(4), 16);
        assert_eq!(out.store_count(), 4);
        assert_eq!(out.loop_depth(), 0);
        // Each store's index must be the iteration constant.
        let mut consts = Vec::new();
        out.walk(&mut |s| {
            if let Stmt::BufferStore { indices, .. } = s {
                consts.push(indices[0].as_int().expect("const index"));
            }
        });
        assert_eq!(consts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn large_loop_downgraded_to_serial() {
        let out = unroll_loops(&unrolled_loop(64), 16);
        match out {
            Stmt::For { kind, extent, .. } => {
                assert_eq!(kind, ForKind::Serial);
                assert_eq!(extent, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_unroll_both_expand() {
        let i = Var::index("i");
        let b = Buffer::new("b", [16usize], DType::F32);
        let inner = unrolled_loop(2);
        let outer = Stmt::For {
            var: i,
            min: 0,
            extent: 3,
            kind: ForKind::Unrolled,
            body: Box::new(inner),
        };
        let _ = b;
        let out = unroll_loops(&outer, 16);
        assert_eq!(out.store_count(), 6);
    }
}
