//! TIR optimization and verification passes.
//!
//! The default [`crate::lower()`] pipeline runs, in order:
//! [`simplify`] → [`unroll`] → [`simplify`] → [`vectorize`] → [`verify`].
//!
//! The post-lowering optimization pipeline ([`pipeline::optimize`],
//! run by the bytecode engine before compilation) additionally applies
//! [`strength`] reduction and guard-unswitching [`licm`], re-verifying
//! after every pass.

pub mod affine;
pub mod licm;
pub mod pipeline;
pub mod simplify;
pub mod strength;
pub mod unroll;
pub mod vectorize;
pub mod verify;

use crate::stmt::Stmt;
use std::collections::HashMap;
use tvm_te::visitor::substitute;
use tvm_te::PrimExpr;

/// Substitute variables (by id) inside every expression of a statement
/// tree. Loop variables that are *redefined* by an inner `For` shadow the
/// substitution within that loop's body.
pub fn subst_stmt(stmt: &Stmt, map: &HashMap<u64, PrimExpr>) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            if map.contains_key(&var.id) {
                // Shadowed: strip the binding within this loop.
                let mut inner = map.clone();
                inner.remove(&var.id);
                Stmt::For {
                    var: var.clone(),
                    min: *min,
                    extent: *extent,
                    kind: *kind,
                    body: Box::new(subst_stmt(body, &inner)),
                }
            } else {
                Stmt::For {
                    var: var.clone(),
                    min: *min,
                    extent: *extent,
                    kind: *kind,
                    body: Box::new(subst_stmt(body, map)),
                }
            }
        }
        Stmt::BufferStore {
            buffer,
            indices,
            value,
        } => Stmt::BufferStore {
            buffer: buffer.clone(),
            indices: indices.iter().map(|i| substitute(i, map)).collect(),
            value: substitute(value, map),
        },
        Stmt::IfThenElse { cond, then, else_ } => Stmt::IfThenElse {
            cond: substitute(cond, map),
            then: Box::new(subst_stmt(then, map)),
            else_: else_.as_ref().map(|e| Box::new(subst_stmt(e, map))),
        },
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(|s| subst_stmt(s, map)).collect()),
        Stmt::Evaluate(e) => Stmt::Evaluate(substitute(e, map)),
        Stmt::Nop => Stmt::Nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use tvm_te::ops::int;
    use tvm_te::{DType, Var};

    #[test]
    fn subst_respects_shadowing() {
        let i = Var::index("i");
        let b = Buffer::new("b", [8usize], DType::F32);
        let inner = Stmt::For {
            var: i.clone(),
            min: 0,
            extent: 8,
            kind: crate::stmt::ForKind::Serial,
            body: Box::new(Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![i.expr()],
                value: i.expr(),
            }),
        };
        let mut map = HashMap::new();
        map.insert(i.id, int(3));
        let out = subst_stmt(&inner, &map);
        // The loop redefines i, so the store must still reference the var.
        match out {
            Stmt::For { body, .. } => match *body {
                Stmt::BufferStore { value, .. } => {
                    assert!(matches!(value, PrimExpr::Var(_)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
