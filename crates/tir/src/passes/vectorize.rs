//! Vector-loop legalization.
//!
//! A `Vectorized` loop is only meaningful when it is innermost (no nested
//! loops) — otherwise it is downgraded to `Serial`, matching TVM's
//! requirement that `vectorize` applies to the innermost axis.

use crate::stmt::{ForKind, Stmt};

/// Downgrade illegal `Vectorized` loops (any that contain a nested loop)
/// to `Serial`. Legal vector loops are preserved for the interpreter /
/// cost model to exploit.
pub fn legalize_vector_loops(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            let body = legalize_vector_loops(body);
            let kind = if *kind == ForKind::Vectorized && body.loop_depth() > 0 {
                ForKind::Serial
            } else {
                *kind
            };
            Stmt::For {
                var: var.clone(),
                min: *min,
                extent: *extent,
                kind,
                body: Box::new(body),
            }
        }
        Stmt::IfThenElse { cond, then, else_ } => Stmt::IfThenElse {
            cond: cond.clone(),
            then: Box::new(legalize_vector_loops(then)),
            else_: else_.as_ref().map(|e| Box::new(legalize_vector_loops(e))),
        },
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(legalize_vector_loops).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use tvm_te::{DType, Var};

    fn store() -> Stmt {
        let b = Buffer::new("b", [8usize], DType::F32);
        Stmt::BufferStore {
            buffer: b,
            indices: vec![tvm_te::ops::int(0)],
            value: tvm_te::ops::int(1),
        }
    }

    #[test]
    fn innermost_vector_loop_kept() {
        let s = Stmt::For {
            var: Var::index("i"),
            min: 0,
            extent: 8,
            kind: ForKind::Vectorized,
            body: Box::new(store()),
        };
        match legalize_vector_loops(&s) {
            Stmt::For { kind, .. } => assert_eq!(kind, ForKind::Vectorized),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn outer_vector_loop_downgraded() {
        let inner = Stmt::For {
            var: Var::index("j"),
            min: 0,
            extent: 4,
            kind: ForKind::Serial,
            body: Box::new(store()),
        };
        let s = Stmt::For {
            var: Var::index("i"),
            min: 0,
            extent: 8,
            kind: ForKind::Vectorized,
            body: Box::new(inner),
        };
        match legalize_vector_loops(&s) {
            Stmt::For { kind, .. } => assert_eq!(kind, ForKind::Serial),
            other => panic!("unexpected {other:?}"),
        }
    }
}
