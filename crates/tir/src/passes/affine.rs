//! Affine-form analysis of integer index expressions.
//!
//! Lowered index arithmetic is overwhelmingly affine in the loop
//! variables: `split` produces `outer * factor + inner`, `fuse`
//! produces `floordiv(fused, extent)` / `floormod(fused, extent)`, and
//! buffer linearization multiplies by constant strides. This module
//! recovers the canonical form `Σ cᵢ·vᵢ + k` from such expressions,
//! bounds it with interval arithmetic over the enclosing loop ranges,
//! and — the key enabler for strength reduction — *decomposes*
//! `floordiv`/`floormod` by a positive constant exactly when the
//! euclidean remainder part can be proven to stay inside `[0, c)`.
//!
//! All arithmetic is checked: any overflow makes the analysis give up
//! (return `None`) rather than produce a wrong coefficient.

use std::collections::HashMap;
use tvm_te::expr::BinOp;
use tvm_te::{DType, PrimExpr, Var};

/// Inclusive value range `(lo, hi)` of a loop variable, as recorded
/// from `For { min, extent }`: `lo = min`, `hi = min + extent - 1`.
pub type VarRanges = HashMap<u64, (i64, i64)>;

/// An integer expression in canonical affine form `Σ cᵢ·vᵢ + constant`.
///
/// Terms are sorted by variable id and never carry a zero coefficient,
/// so structural equality coincides with semantic equality of the
/// affine form.
#[derive(Debug, Clone, PartialEq)]
pub struct Affine {
    /// Variable terms `(var, coefficient)`, sorted by `var.id`,
    /// coefficients nonzero.
    pub terms: Vec<(Var, i64)>,
    /// Constant offset.
    pub constant: i64,
}

impl Affine {
    /// The constant `k` as an affine form.
    pub fn constant(k: i64) -> Affine {
        Affine {
            terms: vec![],
            constant: k,
        }
    }

    /// The single variable `v` as an affine form.
    pub fn var(v: Var) -> Affine {
        Affine {
            terms: vec![(v, 1)],
            constant: 0,
        }
    }

    /// True when the form has no variable terms.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    fn normalize(mut self) -> Affine {
        self.terms.retain(|(_, c)| *c != 0);
        self.terms.sort_by_key(|(v, _)| v.id);
        self
    }

    /// `self + other`, or `None` on coefficient overflow.
    pub fn add(&self, other: &Affine) -> Option<Affine> {
        self.combine(other, 1)
    }

    /// `self - other`, or `None` on coefficient overflow.
    pub fn sub(&self, other: &Affine) -> Option<Affine> {
        self.combine(other, -1)
    }

    fn combine(&self, other: &Affine, sign: i64) -> Option<Affine> {
        let mut coeffs: HashMap<u64, (Var, i64)> = HashMap::new();
        for (v, c) in &self.terms {
            coeffs.insert(v.id, (v.clone(), *c));
        }
        for (v, c) in &other.terms {
            let signed = c.checked_mul(sign)?;
            match coeffs.entry(v.id) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let cur = e.get().1;
                    e.get_mut().1 = cur.checked_add(signed)?;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((v.clone(), signed));
                }
            }
        }
        let constant = self
            .constant
            .checked_add(other.constant.checked_mul(sign)?)?;
        Some(
            Affine {
                terms: coeffs.into_values().collect(),
                constant,
            }
            .normalize(),
        )
    }

    /// `self * k`, or `None` on overflow.
    pub fn scale(&self, k: i64) -> Option<Affine> {
        let mut terms = Vec::with_capacity(self.terms.len());
        for (v, c) in &self.terms {
            terms.push((v.clone(), c.checked_mul(k)?));
        }
        Some(
            Affine {
                terms,
                constant: self.constant.checked_mul(k)?,
            }
            .normalize(),
        )
    }

    /// Inclusive interval of the form's value given variable ranges.
    /// `None` if a variable has no recorded range or arithmetic
    /// overflows.
    pub fn interval(&self, ranges: &VarRanges) -> Option<(i64, i64)> {
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (v, c) in &self.terms {
            let &(vlo, vhi) = ranges.get(&v.id)?;
            let a = c.checked_mul(vlo)?;
            let b = c.checked_mul(vhi)?;
            lo = lo.checked_add(a.min(b))?;
            hi = hi.checked_add(a.max(b))?;
        }
        Some((lo, hi))
    }

    /// Exact euclidean decomposition by a positive constant `c`:
    /// returns `(q, r)` with `self = c·q + r` **and** a proof that the
    /// value of `r` stays inside `[0, c)` for all variable assignments
    /// within `ranges` — which makes `floordiv(self, c) = q` and
    /// `floormod(self, c) = r` exact rewrites.
    ///
    /// Each coefficient (and the constant) is split with euclidean
    /// division, so `r`'s coefficients are already in `[0, c)`; the
    /// interval check then bounds the whole remainder form.
    pub fn div_rem(&self, c: i64, ranges: &VarRanges) -> Option<(Affine, Affine)> {
        if c <= 0 {
            return None;
        }
        let mut q = Affine::constant(self.constant.div_euclid(c));
        let mut r = Affine::constant(self.constant.rem_euclid(c));
        for (v, coeff) in &self.terms {
            let qc = coeff.div_euclid(c);
            let rc = coeff.rem_euclid(c);
            if qc != 0 {
                q.terms.push((v.clone(), qc));
            }
            if rc != 0 {
                r.terms.push((v.clone(), rc));
            }
        }
        let q = q.normalize();
        let r = r.normalize();
        let (rlo, rhi) = r.interval(ranges)?;
        if rlo >= 0 && rhi < c {
            Some((q, r))
        } else {
            None
        }
    }

    /// Rebuild the affine form as a `PrimExpr` (`i64` arithmetic):
    /// `c₀·v₀ + c₁·v₁ + … + k`, omitting unit coefficients and a zero
    /// constant where possible.
    pub fn to_expr(&self) -> PrimExpr {
        let imm = |v: i64| PrimExpr::IntImm(v, DType::I64);
        let mut acc: Option<PrimExpr> = None;
        for (v, c) in &self.terms {
            let term = if *c == 1 {
                v.expr()
            } else {
                PrimExpr::binary(BinOp::Mul, v.expr(), imm(*c))
            };
            acc = Some(match acc {
                None => term,
                Some(a) => PrimExpr::binary(BinOp::Add, a, term),
            });
        }
        match acc {
            None => imm(self.constant),
            Some(a) if self.constant == 0 => a,
            Some(a) => PrimExpr::binary(BinOp::Add, a, imm(self.constant)),
        }
    }
}

/// Extract the affine form of an integer expression, or `None` when the
/// expression is not (provably) affine.
///
/// Handles literals, variables, `+`, `-`, multiplication by a constant,
/// and — recursively — `floordiv`/`floormod` by a positive constant
/// whenever [`Affine::div_rem`] can prove the decomposition with the
/// given variable `ranges`. Truncated `Div` by a positive constant is
/// accepted when the numerator is provably non-negative (where it
/// agrees with `floordiv`).
pub fn affine_of(e: &PrimExpr, ranges: &VarRanges) -> Option<Affine> {
    match e {
        PrimExpr::IntImm(v, _) => Some(Affine::constant(*v)),
        PrimExpr::Var(v) if v.dtype.is_int() => Some(Affine::var(v.clone())),
        PrimExpr::Binary(op, a, b) => {
            if e.dtype().is_float() {
                return None;
            }
            match op {
                BinOp::Add => affine_of(a, ranges)?.add(&affine_of(b, ranges)?),
                BinOp::Sub => affine_of(a, ranges)?.sub(&affine_of(b, ranges)?),
                BinOp::Mul => {
                    if let Some(k) = b.as_int() {
                        affine_of(a, ranges)?.scale(k)
                    } else if let Some(k) = a.as_int() {
                        affine_of(b, ranges)?.scale(k)
                    } else {
                        None
                    }
                }
                BinOp::FloorDiv => {
                    let c = b.as_int()?;
                    let (q, _) = affine_of(a, ranges)?.div_rem(c, ranges)?;
                    Some(q)
                }
                BinOp::FloorMod => {
                    let c = b.as_int()?;
                    let (_, r) = affine_of(a, ranges)?.div_rem(c, ranges)?;
                    Some(r)
                }
                BinOp::Div => {
                    // Truncated division agrees with floordiv only for a
                    // non-negative numerator.
                    let c = b.as_int()?;
                    let num = affine_of(a, ranges)?;
                    let (lo, _) = num.interval(ranges)?;
                    if lo >= 0 {
                        let (q, _) = num.div_rem(c, ranges)?;
                        Some(q)
                    } else {
                        None
                    }
                }
                BinOp::Min | BinOp::Max => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::ops::{floordiv, floormod, int};

    fn ranged(vars: &[(&Var, i64, i64)]) -> VarRanges {
        vars.iter().map(|(v, lo, hi)| (v.id, (*lo, *hi))).collect()
    }

    #[test]
    fn recovers_split_reconstruction() {
        // outer * 4 + inner with inner in [0,4): affine, interval [0, N).
        let o = Var::index("o");
        let i = Var::index("i");
        let e = o.expr() * int(4) + i.expr();
        let r = ranged(&[(&o, 0, 7), (&i, 0, 3)]);
        let a = affine_of(&e, &r).expect("affine");
        assert_eq!(a.interval(&r), Some((0, 31)));
        assert_eq!(a.terms.len(), 2);
    }

    #[test]
    fn fuse_of_affine_combination_decomposes() {
        // The realistic shape: fused = o*4 + i (o in [0,3), i in [0,4)),
        // then floordiv(fused, 4) == o and floormod(fused, 4) == i.
        let o = Var::index("o");
        let i = Var::index("i");
        let fused = o.expr() * int(4) + i.expr();
        let r = ranged(&[(&o, 0, 2), (&i, 0, 3)]);
        let q = affine_of(&floordiv(fused.clone(), int(4)), &r).expect("q");
        let m = affine_of(&floormod(fused, int(4)), &r).expect("m");
        assert_eq!(q, Affine::var(o));
        assert_eq!(m, Affine::var(i));
    }

    #[test]
    fn floordiv_with_unbounded_remainder_fails() {
        let fz = Var::index("fz");
        let r = ranged(&[(&fz, 0, 11)]);
        assert!(affine_of(&floordiv(fz.expr(), int(4)), &r).is_none());
    }

    #[test]
    fn brute_force_div_rem_against_euclid() {
        // Exhaustively check the decomposition on a 2-var affine form
        // against i64 euclidean division.
        let x = Var::index("x");
        let y = Var::index("y");
        for (cx, cy, k, c) in [
            (4i64, 1i64, 0i64, 4i64),
            (6, 2, 3, 3),
            (8, 1, -4, 4),
            (12, 3, 5, 6),
            (-4, 1, 0, 4),
        ] {
            let form = Affine {
                terms: vec![(x.clone(), cx), (y.clone(), cy)],
                constant: k,
            }
            .normalize();
            let ranges = ranged(&[(&x, 0, 5), (&y, 0, 2)]);
            if let Some((q, r)) = form.div_rem(c, &ranges) {
                for xv in 0..=5 {
                    for yv in 0..=2 {
                        let env: VarRanges = ranged(&[(&x, xv, xv), (&y, yv, yv)]);
                        let val = cx * xv + cy * yv + k;
                        let (qv, qh) = q.interval(&env).unwrap();
                        let (rv, rh) = r.interval(&env).unwrap();
                        assert_eq!(qv, qh);
                        assert_eq!(rv, rh);
                        assert_eq!(qv, val.div_euclid(c), "quotient {cx} {cy} {k} / {c}");
                        assert_eq!(rv, val.rem_euclid(c), "remainder {cx} {cy} {k} / {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn to_expr_round_trips() {
        let x = Var::index("x");
        let y = Var::index("y");
        let form = Affine {
            terms: vec![(x.clone(), 3), (y.clone(), 1)],
            constant: -2,
        }
        .normalize();
        let r = ranged(&[(&x, 0, 4), (&y, 1, 2)]);
        let back = affine_of(&form.to_expr(), &r).expect("round trip");
        assert_eq!(back, form);
    }

    #[test]
    fn scale_and_overflow_guard() {
        let x = Var::index("x");
        let a = Affine::var(x);
        assert!(a.scale(i64::MAX).is_some());
        assert!(a
            .scale(i64::MAX)
            .unwrap()
            .add(&Affine::var(Var::index("z")))
            .is_some());
        let big = Affine::constant(i64::MAX);
        assert!(big.add(&Affine::constant(1)).is_none());
    }
}
