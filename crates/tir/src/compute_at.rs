//! `compute_at` lowering: region inference and attached-producer emission.
//!
//! When `s[P].compute_at(s[C], axis)` is scheduled, the consumer's inner
//! loops (those below `axis`) read some rectangular region of `P` at each
//! iteration of `axis`. This module infers that region from the
//! consumer's (substituted) body under an affinity assumption — every
//! index of `P` must be affine in the consumer's inner loop variables,
//! which holds for all split/reorder schedules — and emits a loop nest
//! recomputing exactly that region into `P`'s buffer.
//!
//! Differences from TVM, documented in DESIGN.md: the region is written
//! into `P`'s full-size buffer (TVM shrinks storage to the region), and
//! the attached producer's own splits are ignored (plain region loops).

use crate::analysis::eval_int;
use crate::buffer::Buffer;
use crate::stmt::{ForKind, Stmt};
use std::collections::HashMap;
use std::sync::Arc;
use tvm_te::ops::cmp;
use tvm_te::visitor::{substitute, walk};
use tvm_te::{Combiner, DType, IterVar, OpKind, PrimExpr, Stage, Var};

/// Inferred 1-D region: start expression (in outer-loop variables) and a
/// constant extent.
struct DimRegion {
    lo: PrimExpr,
    extent: i64,
}

/// Affine description of one index expression over the inner loops:
/// value at the all-min corner plus negative/positive excursions.
struct AffineIndex {
    base: PrimExpr,
    at_min_corner: i64,
    neg: i64,
    pos: i64,
}

fn analyze_index(f: &PrimExpr, inner: &[IterVar], env0: &HashMap<u64, i64>) -> AffineIndex {
    let f0 = eval_int(f, env0).unwrap_or_else(|| {
        panic!("compute_at: cannot evaluate producer index `{f}` (non-integer or unbound)")
    });
    let mut neg = 0i64;
    let mut pos = 0i64;
    let mut inner_min: HashMap<u64, PrimExpr> = HashMap::new();
    for v in inner {
        inner_min.insert(v.var.id, PrimExpr::from(v.dom.min));
        if v.dom.extent < 2 {
            continue;
        }
        let mut env1 = env0.clone();
        env1.insert(v.var.id, v.dom.min + 1);
        let f1 = eval_int(f, &env1).expect("evaluable at probe point");
        let c = f1 - f0;
        if v.dom.extent >= 3 {
            let mut env2 = env0.clone();
            env2.insert(v.var.id, v.dom.min + 2);
            let f2 = eval_int(f, &env2).expect("evaluable at probe point");
            assert_eq!(
                f2 - f1,
                c,
                "compute_at: index `{f}` is not affine in inner loop `{}`",
                v.var.name
            );
        }
        let swing = c * (v.dom.extent - 1);
        neg += swing.min(0);
        pos += swing.max(0);
    }
    let base = crate::passes::simplify::simplify_expr(&substitute(f, &inner_min));
    AffineIndex {
        base,
        at_min_corner: f0,
        neg,
        pos,
    }
}

/// Infer the per-dimension regions of `producer` read by
/// `consumer_value`, given the consumer's loops below the attach point.
fn infer_regions(
    producer: &Stage,
    inner: &[IterVar],
    fixed: &[IterVar],
    consumer_value: &PrimExpr,
) -> Vec<DimRegion> {
    let ptensor = &producer.tensor;
    let mut reads: Vec<Vec<PrimExpr>> = Vec::new();
    walk(consumer_value, &mut |e| {
        if let PrimExpr::TensorRead(t, idx) = e {
            if t.same_as(ptensor) {
                reads.push(idx.clone());
            }
        }
    });
    assert!(
        !reads.is_empty(),
        "compute_at: consumer body does not read `{}` after substitution",
        ptensor.name()
    );

    // Probe environment: every loop variable at its domain minimum.
    let mut env0: HashMap<u64, i64> = HashMap::new();
    for v in fixed.iter().chain(inner.iter()) {
        env0.insert(v.var.id, v.dom.min);
    }

    (0..ptensor.ndim())
        .map(|d| {
            let infos: Vec<AffineIndex> = reads
                .iter()
                .map(|idx| analyze_index(&idx[d], inner, &env0))
                .collect();
            // Offsets of each read's min-corner value relative to the
            // first read; they must be constants for a single rectangular
            // region to cover all reads (affine bases over the same fixed
            // vars ⇒ constant differences).
            let base0 = infos[0].at_min_corner;
            let lo_c = infos
                .iter()
                .map(|i| (i.at_min_corner - base0) + i.neg)
                .min()
                .expect("non-empty");
            let hi_c = infos
                .iter()
                .map(|i| (i.at_min_corner - base0) + i.pos)
                .max()
                .expect("non-empty");
            let extent = (hi_c - lo_c + 1).clamp(1, ptensor.shape()[d] as i64);
            let lo = crate::passes::simplify::simplify_expr(
                &(infos[0].base.clone() + PrimExpr::from(lo_c)),
            );
            DimRegion { lo, extent }
        })
        .collect()
}

fn identity_expr(c: Combiner, dtype: DType) -> PrimExpr {
    if dtype.is_float() {
        PrimExpr::FloatImm(c.identity_f64(), dtype)
    } else {
        let v = match c {
            Combiner::Sum => 0,
            Combiner::Prod => 1,
            Combiner::Max => i64::MIN,
            Combiner::Min => i64::MAX,
        };
        PrimExpr::IntImm(v, dtype)
    }
}

/// Emit the statement computing `producer`'s inferred region, for
/// insertion at the top of the consumer's attach-axis loop body.
pub(crate) fn attached_region_stmt(
    producer: &Stage,
    consumer: &Stage,
    attach_pos: usize,
    consumer_value: &PrimExpr,
    buf_of: &HashMap<u64, Arc<Buffer>>,
) -> Stmt {
    let ptensor = &producer.tensor;
    let buf = buf_of
        .get(&ptensor.op.id)
        .expect("attached producer has a buffer")
        .clone();
    let (axes, body) = match &ptensor.op.kind {
        OpKind::Compute { axes, body, .. } => (axes.clone(), body.clone()),
        OpKind::Placeholder => panic!("cannot attach a placeholder"),
    };

    let inner = &consumer.leaf_iter_vars[attach_pos + 1..];
    let fixed = &consumer.leaf_iter_vars[..=attach_pos];
    let regions = infer_regions(producer, inner, fixed, consumer_value);

    // Region loop variables and the producer-axis values they map to.
    let region_vars: Vec<Var> = (0..axes.len())
        .map(|d| Var::index(format!("{}.r{d}", ptensor.name())))
        .collect();
    let axis_vals: Vec<PrimExpr> = region_vars
        .iter()
        .zip(&regions)
        .map(|(v, r)| r.lo.clone() + v.expr())
        .collect();

    // Substitution: producer axis vars -> region index expressions.
    let mut map: HashMap<u64, PrimExpr> = HashMap::new();
    for (ax, val) in axes.iter().zip(&axis_vals) {
        map.insert(ax.var.id, val.clone());
    }
    let out_idx: Vec<PrimExpr> = axis_vals.clone();

    // Bounds guard: the region may stick out of the producer's domain at
    // ragged tile edges.
    let guard = axis_vals
        .iter()
        .enumerate()
        .map(|(d, v)| {
            cmp::and(
                cmp::ge(v.clone(), 0i64),
                cmp::lt(v.clone(), PrimExpr::from(ptensor.shape()[d] as i64)),
            )
        })
        .reduce(cmp::and)
        .expect("rank >= 1");

    let mut stmt = match &body {
        PrimExpr::Reduce {
            combiner,
            source,
            axes: raxes,
        } => {
            let init = Stmt::BufferStore {
                buffer: buf.clone(),
                indices: out_idx.clone(),
                value: identity_expr(*combiner, ptensor.dtype()),
            };
            let read_out = PrimExpr::TensorRead(ptensor.clone(), out_idx.clone());
            let update_val =
                crate::lower::combine_expr_pub(*combiner, read_out, substitute(source, &map));
            let mut update = Stmt::BufferStore {
                buffer: buf.clone(),
                indices: out_idx,
                value: update_val,
            };
            for r in raxes.iter().rev() {
                update = Stmt::For {
                    var: r.var.clone(),
                    min: r.dom.min,
                    extent: r.dom.extent,
                    kind: ForKind::Serial,
                    body: Box::new(update),
                };
            }
            init.then(update)
        }
        other => Stmt::BufferStore {
            buffer: buf,
            indices: out_idx,
            value: substitute(other, &map),
        },
    };

    stmt = Stmt::IfThenElse {
        cond: guard,
        then: Box::new(stmt),
        else_: None,
    };

    for (v, r) in region_vars.iter().zip(&regions).rev() {
        stmt = Stmt::For {
            var: v.clone(),
            min: 0,
            extent: r.extent,
            kind: ForKind::Serial,
            body: Box::new(stmt),
        };
    }
    stmt
}

#[cfg(test)]
mod tests {
    use crate::lower::lower;
    use tvm_runtime_free_test::*;

    // Minimal local executor harness: this crate cannot depend on
    // tvm-runtime (dependency direction), so structural checks live here
    // and numeric checks live in the workspace integration tests.
    mod tvm_runtime_free_test {
        pub use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule, Tensor};
    }

    fn chain(n: usize) -> (Tensor, Tensor, Tensor) {
        let a = placeholder([n, n], DType::F32, "A");
        let t = compute([n, n], "T", |i| a.at(&[i[0].clone(), i[1].clone()]) * 2i64);
        let o = compute([n, n], "O", |i| t.at(&[i[0].clone(), i[1].clone()]) + 1i64);
        (a, t, o)
    }

    #[test]
    fn attached_elementwise_moves_inside_consumer_loop() {
        let (a, t, o) = chain(16);
        let mut s = Schedule::create(&[o.clone()]);
        let (y, x) = (o.axis(0), o.axis(1));
        let (yo, _yi) = s.split(&o, &y, 4);
        let (_xo, _xi) = s.split(&o, &x, 4);
        s.compute_at(&t, &o, &yo);
        let f = lower(&s, &[a, o], "fused");
        // Both stores exist, and T's store sits under at least the yo loop
        // (depth > 1 from the top).
        assert_eq!(f.body.store_count(), 2);
        // Top level has exactly one loop nest (no separate T nest).
        match &f.body {
            crate::stmt::Stmt::For { .. } => {}
            other => panic!("expected a single top-level nest, got {other:?}"),
        }
    }

    #[test]
    fn attached_region_extent_matches_tile() {
        let (a, t, o) = chain(16);
        let mut s = Schedule::create(&[o.clone()]);
        let (y, x) = (o.axis(0), o.axis(1));
        let (yo, _yi) = s.split(&o, &y, 4);
        let (_xo, _xi) = s.split(&o, &x, 8);
        s.compute_at(&t, &o, &yo);
        let f = lower(&s, &[a, o], "fused");
        // The region loops for T are 4 (rows of the y tile) x 16 (all
        // columns: x loops are below the attach point... x tiles of 8 and
        // xo below yo => region covers the whole x range of 16).
        let mut extents = Vec::new();
        f.body.walk(&mut |st| {
            if let crate::stmt::Stmt::For { var, extent, .. } = st {
                if var.name.starts_with("T.r") {
                    extents.push(*extent);
                }
            }
        });
        assert_eq!(extents, vec![4, 16]);
    }

    #[test]
    fn reduce_producer_attaches() {
        // E = A*B (matmul); O = E + 1; attach E at O's row-tile loop.
        let n = 8usize;
        let a = placeholder([n, n], DType::F32, "A");
        let b = placeholder([n, n], DType::F32, "B");
        let k = reduce_axis(0, n as i64, "k");
        let e = compute([n, n], "E", |i| {
            sum(
                a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
                &[k.clone()],
            )
        });
        let o = compute([n, n], "O", |i| e.at(&[i[0].clone(), i[1].clone()]) + 1i64);
        let mut s = Schedule::create(&[o.clone()]);
        let y = o.axis(0);
        let (yo, _yi) = s.split(&o, &y, 2);
        s.compute_at(&e, &o, &yo);
        let f = lower(&s, &[a, b, o], "fused_mm");
        // E contributes an init store and an update store per region
        // element, plus O's store: 3 stores.
        assert_eq!(f.body.store_count(), 3);
        assert_eq!(f.allocs.len(), 1, "E stays an internal allocation");
    }

    #[test]
    #[should_panic(expected = "does not read")]
    fn attach_requires_consumer_read() {
        let n = 4usize;
        let a = placeholder([n], DType::F32, "A");
        let t = compute([n], "T", |i| a.at(&[i[0].clone()]));
        let o = compute([n], "O", |i| a.at(&[i[0].clone()]) + 1i64);
        let mut s = Schedule::create(&[t.clone(), o.clone()]);
        let y = o.axis(0);
        s.compute_at(&t, &o, &y);
    }

    #[test]
    #[should_panic(expected = "must stay at root")]
    fn outputs_cannot_attach() {
        let (_, t, o) = chain(8);
        // Make T an output too.
        let mut s = Schedule::create(&[t.clone(), o.clone()]);
        let y = o.axis(0);
        s.compute_at(&t, &o, &y);
    }
}
