#![warn(missing_docs)]
//! # tvm-tir — loop-nest tensor IR and lowering
//!
//! The second half of the mini-TVM compilation pipeline:
//!
//! * [`stmt::Stmt`] — an explicit loop-nest statement IR (TVM's TIR),
//! * [`lower::lower`] — turns a scheduled [`tvm_te::Schedule`] into a
//!   [`stmt::PrimFunc`] (loop nests with buffer stores),
//! * [`passes`] — simplification, loop unrolling, vectorization
//!   legalization and structural verification,
//! * [`analysis`] — loop-nest feature extraction consumed by the
//!   analytical GPU cost model (`gpu-sim`) and the XGB tuner's feature
//!   encoding (`autotvm`),
//! * [`analyze`] — static schedule-safety analysis (interval bounds
//!   proofs and parallel-dependence race detection) run before any
//!   config is compiled or measured,
//! * [`builder`] — an imperative TIR builder used for kernels whose
//!   loop-carried dependences fall outside pure tensor expressions
//!   (PolyBench LU and Cholesky).
//!
//! ```
//! use tvm_te::{placeholder, compute, DType, Schedule};
//! use tvm_tir::lower::lower;
//!
//! let a = placeholder([8, 8], DType::F32, "A");
//! let b = compute([8, 8], "B", |i| a.at(&[i[0].clone(), i[1].clone()]) + 1i64);
//! let s = Schedule::create(&[b.clone()]);
//! let f = lower(&s, &[a, b], "add_one");
//! assert_eq!(f.params.len(), 2);
//! ```

pub mod analysis;
pub mod analyze;
pub mod buffer;
pub mod builder;
pub mod compute_at;
pub mod lower;
pub mod passes;
pub mod printer;
pub mod stmt;

pub use buffer::Buffer;
pub use lower::{lower, lower_with_options, LowerOptions};
pub use passes::pipeline::{optimize, PassManager, PassTrace, PipelineError, PIPELINE_VERSION};
pub use stmt::{ForKind, PrimFunc, Stmt};
