//! Memory buffers referenced by TIR statements.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tvm_te::{DType, Tensor};

static NEXT_BUF_ID: AtomicU64 = AtomicU64::new(1);

/// A contiguous, row-major buffer backing one tensor.
///
/// Buffers created from a [`Tensor`] reuse the producing op's id as
/// `source_op`, which is how lowered expressions (`TensorRead`) are tied to
/// storage at interpretation time.
#[derive(Debug, Clone)]
pub struct Buffer {
    /// Unique buffer id.
    pub id: u64,
    /// Id of the TE op this buffer stores (0 for free-standing buffers).
    pub source_op: u64,
    /// Display name.
    pub name: String,
    /// Row-major shape.
    pub shape: Vec<usize>,
    /// Element type.
    pub dtype: DType,
}

impl Buffer {
    /// Buffer backing a TE tensor.
    pub fn from_tensor(t: &Tensor) -> Arc<Buffer> {
        Arc::new(Buffer {
            id: NEXT_BUF_ID.fetch_add(1, Ordering::Relaxed),
            source_op: t.op.id,
            name: t.name().to_string(),
            shape: t.shape().to_vec(),
            dtype: t.dtype(),
        })
    }

    /// Free-standing buffer (used by the imperative [`crate::builder`]).
    pub fn new(name: impl Into<String>, shape: impl Into<Vec<usize>>, dtype: DType) -> Arc<Buffer> {
        Arc::new(Buffer {
            id: NEXT_BUF_ID.fetch_add(1, Ordering::Relaxed),
            source_op: 0,
            name: name.into(),
            shape: shape.into(),
            dtype,
        })
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype.size_bytes()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.shape.len()];
        for d in (0..self.shape.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.shape[d + 1];
        }
        strides
    }

    /// Linear offset for a multi-index (debug-checked).
    pub fn offset(&self, idx: &[i64]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let strides = self.strides();
        let mut off = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            debug_assert!(
                i >= 0 && (i as usize) < self.shape[d],
                "index {i} out of bounds for dim {d} of `{}` (shape {:?})",
                self.name,
                self.shape
            );
            off += i as usize * strides[d];
        }
        off
    }
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?} {}", self.name, self.shape, self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::placeholder;

    #[test]
    fn strides_row_major() {
        let b = Buffer::new("b", [2usize, 3, 4], DType::F32);
        assert_eq!(b.strides(), vec![12, 4, 1]);
        assert_eq!(b.numel(), 24);
        assert_eq!(b.size_bytes(), 96);
    }

    #[test]
    fn offset_computes_linear_index() {
        let b = Buffer::new("b", [2usize, 3, 4], DType::F32);
        assert_eq!(b.offset(&[0, 0, 0]), 0);
        assert_eq!(b.offset(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    fn from_tensor_links_source_op() {
        let t = placeholder([4, 4], DType::F64, "A");
        let b = Buffer::from_tensor(&t);
        assert_eq!(b.source_op, t.op.id);
        assert_eq!(b.dtype, DType::F64);
        assert_eq!(b.shape, vec![4, 4]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked_in_debug() {
        let b = Buffer::new("b", [2usize, 2], DType::F32);
        let _ = b.offset(&[2, 0]);
    }
}
