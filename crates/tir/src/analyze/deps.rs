//! Cross-iteration dependence checking for parallel and vectorized
//! loops.
//!
//! For each `ForKind::Parallel` / `ForKind::Vectorized` loop the pass
//! linearizes every buffer access in the loop body to a row-major
//! offset, splits it into a stride `s` along the parallel axis plus a
//! footprint interval over the enclosed serial loops, and runs a
//! distance test: a conflict exists iff two distinct iterations `t` and
//! `t + d` (`0 < |d| < extent`) can touch the same element, i.e.
//! `s*d` lands inside the difference of the two footprints.
//!
//! Certificates are only `Deny` when they are robust: the offset must
//! be affine in the parallel variable (verified at both ends of the
//! range), the two accesses must shift identically with every outer
//! loop variable, and neither access may sit under a guard that
//! mentions the parallel variable. Anything weaker demotes to `Warn`
//! (`TIR-RACE-MAYBE`): the analyzer never claims a race it cannot
//! prove, and never silently trusts one it cannot disprove either.

use super::interval::{eval_interval, Interval, IntervalEnv};
use super::{codes, Diagnostic, Severity};
use crate::analysis::eval_int;
use crate::stmt::{ForKind, PrimFunc, Stmt};
use std::collections::{HashMap, HashSet};
use tvm_te::{PrimExpr, Var};

/// One loop enclosing an access (outside or inside the parallel loop).
#[derive(Debug, Clone)]
struct LoopCtx {
    id: u64,
    min: i64,
    extent: i64,
}

/// A linearizable buffer access inside the body of a parallel loop.
struct Access {
    buffer: String,
    elem_strides: Vec<i64>,
    indices: Vec<PrimExpr>,
    is_write: bool,
    /// Loops strictly inside the parallel loop that enclose this access.
    inner: Vec<LoopCtx>,
    /// Whether any enclosing guard mentions the parallel variable.
    guarded_by_par: bool,
}

/// Offset decomposition of an access relative to the parallel variable.
struct Footprint {
    /// Offset delta per step of the parallel variable.
    s: i64,
    /// Affinity verified at the far end of the parallel range.
    affine: bool,
    /// Offset range over the inner loops, parallel/outer vars at min.
    range: Interval,
    /// Offset delta per step of each outer variable, outermost first.
    outer_strides: Vec<Option<i64>>,
}

/// Check every parallel/vectorized loop of `func`, appending findings.
pub fn check_parallel_deps(func: &PrimFunc, out: &mut Vec<Diagnostic>) {
    let mut seen = HashSet::new();
    visit(&func.body, &mut Vec::new(), out, &mut seen);
}

fn visit(
    stmt: &Stmt,
    outer: &mut Vec<LoopCtx>,
    out: &mut Vec<Diagnostic>,
    seen: &mut HashSet<(&'static str, String, String)>,
) {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            if matches!(kind, ForKind::Parallel | ForKind::Vectorized) && *extent >= 2 {
                analyze_loop(var, *min, *extent, *kind, body, outer, out, seen);
            }
            outer.push(LoopCtx {
                id: var.id,
                min: *min,
                extent: *extent,
            });
            visit(body, outer, out, seen);
            outer.pop();
        }
        Stmt::IfThenElse { then, else_, .. } => {
            visit(then, outer, out, seen);
            if let Some(e) = else_ {
                visit(e, outer, out, seen);
            }
        }
        Stmt::Seq(items) => {
            for s in items {
                visit(s, outer, out, seen);
            }
        }
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_loop(
    par: &Var,
    par_min: i64,
    par_extent: i64,
    kind: ForKind,
    body: &Stmt,
    outer: &[LoopCtx],
    out: &mut Vec<Diagnostic>,
    seen: &mut HashSet<(&'static str, String, String)>,
) {
    let mut accesses = Vec::new();
    collect_accesses(body, par.id, &mut Vec::new(), false, &mut accesses);

    let footprints: Vec<Option<Footprint>> = accesses
        .iter()
        .map(|a| footprint(a, par.id, par_min, par_extent, outer))
        .collect();

    let mut emit = |code: &'static str, severity: Severity, buffer: &str, message: String| {
        if seen.insert((code, buffer.to_string(), par.name.clone())) {
            out.push(Diagnostic {
                code,
                severity,
                message,
                buffer: Some(buffer.to_string()),
                access: None,
                loop_var: Some(par.name.clone()),
            });
        }
    };

    let kw = kind.keyword();
    for i in 0..accesses.len() {
        for j in i..accesses.len() {
            let (a1, a2) = (&accesses[i], &accesses[j]);
            if a1.buffer != a2.buffer || !(a1.is_write || a2.is_write) {
                continue;
            }
            // Read-read never races; a self-paired read is skipped above,
            // and a self-paired write tests the access against its own
            // images in other iterations.
            let code = if a1.is_write && a2.is_write {
                codes::RACE_WW
            } else {
                codes::RACE_RW
            };
            let pair_kind = if code == codes::RACE_WW {
                "write-write"
            } else {
                "read-write"
            };
            let (Some(f1), Some(f2)) = (&footprints[i], &footprints[j]) else {
                emit(
                    codes::RACE_MAYBE,
                    Severity::Warn,
                    &a1.buffer,
                    format!(
                        "{kw} loop `{}`: accesses to `{}` are outside the \
                         analyzable fragment; cannot rule out a {pair_kind} race",
                        par.name, a1.buffer
                    ),
                );
                continue;
            };
            if f1.s != f2.s || !f1.affine || !f2.affine {
                emit(
                    codes::RACE_MAYBE,
                    Severity::Warn,
                    &a1.buffer,
                    format!(
                        "{kw} loop `{}`: accesses to `{}` move non-uniformly \
                         along the parallel axis; cannot rule out a {pair_kind} race",
                        par.name, a1.buffer
                    ),
                );
                continue;
            }
            if !conflicts(f1, f2, par_extent) {
                continue;
            }
            // A conflict certificate: robust only when both accesses
            // shift identically with every outer variable and no guard
            // keys on the parallel variable.
            let robust = !a1.guarded_by_par
                && !a2.guarded_by_par
                && f1
                    .outer_strides
                    .iter()
                    .zip(&f2.outer_strides)
                    .all(|(x, y)| matches!((x, y), (Some(a), Some(b)) if a == b));
            let (sev, final_code) = if robust {
                (Severity::Deny, code)
            } else {
                (Severity::Warn, codes::RACE_MAYBE)
            };
            emit(
                final_code,
                sev,
                &a1.buffer,
                format!(
                    "{kw} loop `{}`: distinct iterations touch the same \
                     element of `{}` ({pair_kind}, stride {} on the parallel axis)",
                    par.name, a1.buffer, f1.s
                ),
            );
        }
    }
}

/// Variable ids of `ForKind::Parallel` loops whose dependence analysis
/// comes back completely clean.
///
/// "Clean" means [`analyze_loop`] run over the loop in isolation emits
/// no diagnostic at all — neither a certified race nor an unresolved
/// `TIR-RACE-MAYBE`. Because the pairwise sweep covers every
/// write-write and read-write pair (including an access against its own
/// images in other iterations), an empty report proves that no element
/// is touched by two distinct iterations with a write involved: each
/// output element has a single writing iteration and no iteration reads
/// another's writes. Executing such a loop's iterations concurrently is
/// therefore bit-identical to sequential order.
///
/// Two conservative exclusions keep the proof sound:
/// - guard conditions are not modelled by the access collector, so a
///   body that reads a buffer inside an `if` condition is never proven;
/// - the per-loop analysis runs with a fresh dedup set, so a diagnostic
///   already reported for one loop cannot mask the same finding on
///   another loop that reuses the variable name.
///
/// Loops with extent < 2 have no pair of distinct iterations and are
/// trivially race-free.
pub fn race_free_parallel_vars(func: &PrimFunc) -> HashSet<u64> {
    let mut proven = HashSet::new();
    prove(&func.body, ForKind::Parallel, &mut Vec::new(), &mut proven);
    proven
}

/// Variable ids of `ForKind::Vectorized` loops whose dependence analysis
/// comes back completely clean — the same certificate as
/// [`race_free_parallel_vars`], applied to vectorize annotations.
///
/// A clean report proves every element is written by at most one
/// iteration and no iteration reads another's writes, so evaluating a
/// block of iterations simultaneously (packed SIMD lanes) produces
/// bit-identical results to sequential order as long as each lane's own
/// operation sequence is preserved. The native codegen rung uses this to
/// gate its packed f64x2/f32x4 emission; unproven loops run scalar.
pub fn race_free_vectorized_vars(func: &PrimFunc) -> HashSet<u64> {
    let mut proven = HashSet::new();
    prove(&func.body, ForKind::Vectorized, &mut Vec::new(), &mut proven);
    proven
}

fn prove(stmt: &Stmt, want: ForKind, outer: &mut Vec<LoopCtx>, proven: &mut HashSet<u64>) {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            if *kind == want {
                if *extent < 2 {
                    proven.insert(var.id);
                } else if !reads_buffer_in_guard(body) {
                    let mut diags = Vec::new();
                    let mut seen = HashSet::new();
                    analyze_loop(var, *min, *extent, *kind, body, outer, &mut diags, &mut seen);
                    if diags.is_empty() {
                        proven.insert(var.id);
                    }
                }
            }
            outer.push(LoopCtx {
                id: var.id,
                min: *min,
                extent: *extent,
            });
            prove(body, want, outer, proven);
            outer.pop();
        }
        Stmt::IfThenElse { then, else_, .. } => {
            prove(then, want, outer, proven);
            if let Some(e) = else_ {
                prove(e, want, outer, proven);
            }
        }
        Stmt::Seq(items) => {
            for s in items {
                prove(s, want, outer, proven);
            }
        }
        _ => {}
    }
}

/// Does any `if` condition under `stmt` read a buffer element? Such
/// reads are invisible to [`collect_accesses`], so they defeat the
/// race-freedom proof (but not the warn/deny sweep, which is allowed to
/// under-report).
fn reads_buffer_in_guard(stmt: &Stmt) -> bool {
    let mut found = false;
    stmt.walk(&mut |s| {
        if let Stmt::IfThenElse { cond, .. } = s {
            tvm_te::visitor::walk(cond, &mut |node| {
                if matches!(node, PrimExpr::TensorRead(..)) {
                    found = true;
                }
            });
        }
    });
    found
}

/// Does any nonzero iteration distance land the two footprints on a
/// common element?
fn conflicts(f1: &Footprint, f2: &Footprint, extent: i64) -> bool {
    let s = f1.s;
    if s == 0 {
        return f1.range.overlaps(&f2.range);
    }
    // s*d must fall in [r2.lo - r1.hi, r2.hi - r1.lo] for some
    // d in [-(E-1), E-1] \ {0}. Normalize to s > 0.
    let (mut dlo, mut dhi) = (
        f2.range.lo.saturating_sub(f1.range.hi),
        f2.range.hi.saturating_sub(f1.range.lo),
    );
    let s = if s < 0 {
        (dlo, dhi) = (-dhi, -dlo);
        -s
    } else {
        s
    };
    let d_min = -((-dlo).div_euclid(s)); // ceil(dlo / s)
    let d_max = dhi.div_euclid(s); // floor(dhi / s)
    let e = extent - 1;
    // Intersect [d_min, d_max] with [1, e] and [-e, -1].
    d_min.max(1) <= d_max.min(e) || d_min.max(-e) <= d_max.min(-1)
}

fn collect_accesses(
    stmt: &Stmt,
    par_id: u64,
    inner: &mut Vec<LoopCtx>,
    guarded: bool,
    out: &mut Vec<Access>,
) {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            body,
            ..
        } => {
            inner.push(LoopCtx {
                id: var.id,
                min: *min,
                extent: *extent,
            });
            collect_accesses(body, par_id, inner, guarded, out);
            inner.pop();
        }
        Stmt::IfThenElse { cond, then, else_ } => {
            let g = guarded || mentions_var(cond, par_id);
            collect_accesses(then, par_id, inner, g, out);
            if let Some(e) = else_ {
                collect_accesses(e, par_id, inner, g, out);
            }
        }
        Stmt::Seq(items) => {
            for s in items {
                collect_accesses(s, par_id, inner, guarded, out);
            }
        }
        Stmt::BufferStore {
            buffer,
            indices,
            value,
        } => {
            out.push(Access {
                buffer: buffer.name.clone(),
                elem_strides: row_major_strides(&buffer.shape),
                indices: indices.clone(),
                is_write: true,
                inner: inner.clone(),
                guarded_by_par: guarded,
            });
            for e in indices.iter().chain(std::iter::once(value)) {
                collect_reads(e, inner, guarded, out);
            }
        }
        Stmt::Evaluate(e) => collect_reads(e, inner, guarded, out),
        Stmt::Nop => {}
    }
}

fn collect_reads(e: &PrimExpr, inner: &[LoopCtx], guarded: bool, out: &mut Vec<Access>) {
    tvm_te::visitor::walk(e, &mut |node| {
        if let PrimExpr::TensorRead(t, idx) = node {
            out.push(Access {
                buffer: t.name().to_string(),
                elem_strides: row_major_strides(t.shape()),
                indices: idx.clone(),
                is_write: false,
                inner: inner.to_vec(),
                guarded_by_par: guarded,
            });
        }
    });
}

fn mentions_var(e: &PrimExpr, id: u64) -> bool {
    let mut found = false;
    tvm_te::visitor::walk(e, &mut |node| {
        if let PrimExpr::Var(v) = node {
            found |= v.id == id;
        }
    });
    found
}

fn row_major_strides(shape: &[usize]) -> Vec<i64> {
    let mut strides = vec![1i64; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape[d + 1] as i64;
    }
    strides
}

/// Linear offset of an access under a concrete variable assignment.
fn offset_at(a: &Access, env: &HashMap<u64, i64>) -> Option<i64> {
    let mut off = 0i64;
    for (d, idx) in a.indices.iter().enumerate().take(a.elem_strides.len()) {
        off = off.checked_add(eval_int(idx, env)?.checked_mul(a.elem_strides[d])?)?;
    }
    Some(off)
}

/// Decompose one access relative to the parallel variable.
fn footprint(
    a: &Access,
    par_id: u64,
    par_min: i64,
    par_extent: i64,
    outer: &[LoopCtx],
) -> Option<Footprint> {
    // Base point: every variable at its minimum.
    let mut base: HashMap<u64, i64> = HashMap::new();
    for l in outer.iter().chain(a.inner.iter()) {
        base.insert(l.id, l.min);
    }
    base.insert(par_id, par_min);

    let off0 = offset_at(a, &base)?;
    let mut env = base.clone();
    env.insert(par_id, par_min + 1);
    let s = offset_at(a, &env)?.checked_sub(off0)?;
    env.insert(par_id, par_min + par_extent - 1);
    let affine = offset_at(a, &env)?.checked_sub(off0)? == s.checked_mul(par_extent - 1)?;

    let mut outer_strides = Vec::with_capacity(outer.len());
    for l in outer {
        let mut env = base.clone();
        env.insert(l.id, l.min + 1);
        outer_strides.push(offset_at(a, &env).and_then(|o| o.checked_sub(off0)));
    }

    // Footprint over the inner loops: par and outer vars pinned at min.
    let mut vars: HashMap<u64, Interval> = HashMap::new();
    for l in outer {
        vars.insert(l.id, Interval::point(l.min));
    }
    vars.insert(par_id, Interval::point(par_min));
    for l in &a.inner {
        let iv = if l.extent <= 0 {
            Interval::empty()
        } else {
            Interval::new(l.min, l.min + l.extent - 1)
        };
        vars.insert(l.id, iv);
    }
    let ienv = IntervalEnv::with_vars(vars);
    let mut range = Interval::point(0);
    for (d, idx) in a.indices.iter().enumerate().take(a.elem_strides.len()) {
        let iv = eval_interval(idx, &ienv)?;
        range = range.add(&iv.mul(&Interval::point(a.elem_strides[d])));
    }

    Some(Footprint {
        s,
        affine,
        range,
        outer_strides,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use tvm_te::ops::float;
    use tvm_te::DType;

    fn run(f: &PrimFunc) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_parallel_deps(f, &mut out);
        out
    }

    fn for_(var: &Var, extent: i64, kind: ForKind, body: Stmt) -> Stmt {
        Stmt::For {
            var: var.clone(),
            min: 0,
            extent,
            kind,
            body: Box::new(body),
        }
    }

    fn func(body: Stmt, bufs: Vec<std::sync::Arc<Buffer>>) -> PrimFunc {
        PrimFunc {
            name: "t".into(),
            params: bufs,
            allocs: vec![],
            body,
        }
    }

    #[test]
    fn disjoint_rows_are_clean() {
        // parallel i: for j: C[i][j] = 0
        let (i, j) = (Var::index("i"), Var::index("j"));
        let c = Buffer::new("C", [8usize, 8], DType::F32);
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![i.expr(), j.expr()],
            value: float(0.0),
        };
        let body = for_(
            &i,
            8,
            ForKind::Parallel,
            for_(&j, 8, ForKind::Serial, store),
        );
        assert!(run(&func(body, vec![c])).is_empty());
    }

    #[test]
    fn parallel_reduction_axis_is_denied() {
        // parallel k: C[0] = C[0] + A[k] — classic reduction race.
        let k = Var::index("k");
        let c = Buffer::new("C", [1usize], DType::F32);
        let a = tvm_te::placeholder([8], DType::F32, "A");
        let c_t = tvm_te::placeholder([1], DType::F32, "C");
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![tvm_te::ops::int(0)],
            value: c_t.at(&[tvm_te::ops::int(0)]) + a.at(&[k.expr()]),
        };
        let body = for_(&k, 8, ForKind::Parallel, store);
        let diags = run(&func(body, vec![c]));
        assert!(diags
            .iter()
            .any(|d| d.code == codes::RACE_WW && d.severity == Severity::Deny));
        assert!(diags.iter().any(|d| d.code == codes::RACE_RW));
        assert!(diags.iter().all(|d| d.buffer.as_deref() == Some("C")));
    }

    #[test]
    fn overlapping_tiles_are_denied() {
        // parallel io: for ii in 0..6: B[io*4 + ii] = 0 — tiles overlap by 2.
        let (io, ii) = (Var::index("io"), Var::index("ii"));
        let b = Buffer::new("B", [32usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![io.expr() * 4 + ii.expr()],
            value: float(0.0),
        };
        let body = for_(
            &io,
            4,
            ForKind::Parallel,
            for_(&ii, 6, ForKind::Serial, store),
        );
        let diags = run(&func(body, vec![b]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::RACE_WW);
        assert_eq!(diags[0].severity, Severity::Deny);
        assert_eq!(diags[0].loop_var.as_deref(), Some("io"));
    }

    #[test]
    fn exact_tiles_are_clean() {
        // parallel io: for ii in 0..4: B[io*4 + ii] = 0 — exact partition.
        let (io, ii) = (Var::index("io"), Var::index("ii"));
        let b = Buffer::new("B", [16usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![io.expr() * 4 + ii.expr()],
            value: float(0.0),
        };
        let body = for_(
            &io,
            4,
            ForKind::Parallel,
            for_(&ii, 4, ForKind::Serial, store),
        );
        assert!(run(&func(body, vec![b])).is_empty());
    }

    #[test]
    fn vectorized_elementwise_is_clean() {
        // for i: vectorized j: C[i][j] = A[i][j] + 1
        let (i, j) = (Var::index("i"), Var::index("j"));
        let c = Buffer::new("C", [8usize, 8], DType::F32);
        let a = tvm_te::placeholder([8, 8], DType::F32, "A");
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![i.expr(), j.expr()],
            value: a.at(&[i.expr(), j.expr()]) + float(1.0),
        };
        let body = for_(
            &i,
            8,
            ForKind::Serial,
            for_(&j, 8, ForKind::Vectorized, store),
        );
        assert!(run(&func(body, vec![c])).is_empty());
    }

    #[test]
    fn vectorized_reduction_axis_is_denied() {
        // for i: vectorized k: C[i] = C[i] + A[i][k]
        let (i, k) = (Var::index("i"), Var::index("k"));
        let c = Buffer::new("C", [8usize], DType::F32);
        let a = tvm_te::placeholder([8, 8], DType::F32, "A");
        let c_t = tvm_te::placeholder([8], DType::F32, "C");
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![i.expr()],
            value: c_t.at(&[i.expr()]) + a.at(&[i.expr(), k.expr()]),
        };
        let body = for_(
            &i,
            8,
            ForKind::Serial,
            for_(&k, 8, ForKind::Vectorized, store),
        );
        let diags = run(&func(body, vec![c]));
        assert!(diags
            .iter()
            .any(|d| d.code == codes::RACE_WW && d.severity == Severity::Deny));
    }

    #[test]
    fn guard_on_parallel_var_demotes_to_warn() {
        // parallel i: if i < 1 { B[0] = 0 } — only one iteration writes,
        // which the distance test cannot see; must warn, not deny.
        let i = Var::index("i");
        let b = Buffer::new("B", [4usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![tvm_te::ops::int(0)],
            value: float(0.0),
        };
        let body = for_(
            &i,
            8,
            ForKind::Parallel,
            Stmt::IfThenElse {
                cond: tvm_te::ops::cmp::lt(i.expr(), tvm_te::ops::int(1)),
                then: Box::new(store),
                else_: None,
            },
        );
        let diags = run(&func(body, vec![b]));
        assert!(!diags.is_empty());
        assert!(diags
            .iter()
            .all(|d| d.severity == Severity::Warn && d.code == codes::RACE_MAYBE));
    }

    #[test]
    fn race_freedom_proof_accepts_disjoint_rows() {
        // parallel i: for j: C[i][j] = 0 — each row owned by one iteration.
        let (i, j) = (Var::index("i"), Var::index("j"));
        let c = Buffer::new("C", [8usize, 8], DType::F32);
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![i.expr(), j.expr()],
            value: float(0.0),
        };
        let body = for_(
            &i,
            8,
            ForKind::Parallel,
            for_(&j, 8, ForKind::Serial, store),
        );
        let proven = race_free_parallel_vars(&func(body, vec![c]));
        assert!(proven.contains(&i.id));
    }

    #[test]
    fn race_freedom_proof_rejects_reduction_and_maybe() {
        // parallel k: C[0] = C[0] + A[k] — certified race, never proven.
        let k = Var::index("k");
        let c = Buffer::new("C", [1usize], DType::F32);
        let a = tvm_te::placeholder([8], DType::F32, "A");
        let c_t = tvm_te::placeholder([1], DType::F32, "C");
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![tvm_te::ops::int(0)],
            value: c_t.at(&[tvm_te::ops::int(0)]) + a.at(&[k.expr()]),
        };
        let body = for_(&k, 8, ForKind::Parallel, store);
        let proven = race_free_parallel_vars(&func(body, vec![c]));
        assert!(!proven.contains(&k.id));
    }

    #[test]
    fn race_freedom_proof_is_per_loop_not_deduped() {
        // Two sibling parallel loops over same-named vars: the first
        // races, the second is clean. The warn/deny sweep dedups by
        // (code, buffer, var-name); the proof must still separate them.
        let i1 = Var::index("i");
        let i2 = Var::index("i");
        let b = Buffer::new("B", [8usize], DType::F32);
        let racy = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![tvm_te::ops::int(0)],
            value: float(0.0),
        };
        let clean = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![i2.expr()],
            value: float(0.0),
        };
        let body = Stmt::Seq(vec![
            for_(&i1, 8, ForKind::Parallel, racy),
            for_(&i2, 8, ForKind::Parallel, clean),
        ]);
        let proven = race_free_parallel_vars(&func(body, vec![b]));
        assert!(!proven.contains(&i1.id));
        assert!(proven.contains(&i2.id));
    }

    #[test]
    fn race_freedom_proof_refuses_buffer_reads_in_guards() {
        // parallel i: if A[i] < 0 { C[i] = 0 } — the guard read is not
        // collected as an access, so the proof must decline.
        let i = Var::index("i");
        let c = Buffer::new("C", [8usize], DType::F32);
        let a = tvm_te::placeholder([8], DType::F32, "A");
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![i.expr()],
            value: float(0.0),
        };
        let body = for_(
            &i,
            8,
            ForKind::Parallel,
            Stmt::IfThenElse {
                cond: tvm_te::ops::cmp::lt(a.at(&[i.expr()]), float(0.0)),
                then: Box::new(store),
                else_: None,
            },
        );
        let proven = race_free_parallel_vars(&func(body, vec![c]));
        assert!(!proven.contains(&i.id));
    }

    #[test]
    fn trivial_extent_parallel_loop_is_proven() {
        // parallel i in 0..1: C[0] += 1 — no pair of iterations exists.
        let i = Var::index("i");
        let c = Buffer::new("C", [1usize], DType::F32);
        let c_t = tvm_te::placeholder([1], DType::F32, "C");
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![tvm_te::ops::int(0)],
            value: c_t.at(&[tvm_te::ops::int(0)]) + float(1.0),
        };
        let body = for_(&i, 1, ForKind::Parallel, store);
        let proven = race_free_parallel_vars(&func(body, vec![c]));
        assert!(proven.contains(&i.id));
    }

    #[test]
    fn serial_loops_are_ignored() {
        // Serial reduction is fine.
        let k = Var::index("k");
        let c = Buffer::new("C", [1usize], DType::F32);
        let c_t = tvm_te::placeholder([1], DType::F32, "C");
        let store = Stmt::BufferStore {
            buffer: c.clone(),
            indices: vec![tvm_te::ops::int(0)],
            value: c_t.at(&[tvm_te::ops::int(0)]) + float(1.0),
        };
        let body = for_(&k, 8, ForKind::Serial, store);
        assert!(run(&func(body, vec![c])).is_empty());
    }
}
