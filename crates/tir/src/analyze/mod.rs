//! Static schedule-safety analysis over lowered TIR.
//!
//! Runs before any compilation or measurement and answers one question:
//! *is it safe to execute this scheduled function?* Two passes feed a
//! shared diagnostic stream:
//!
//! * [`bounds`] — abstract interpretation over the integer [`interval`]
//!   domain, proving every buffer access in-bounds (or reporting the
//!   offending access path),
//! * [`deps`] — a dependence test over the iterations of
//!   `ForKind::Parallel` / `ForKind::Vectorized` loops, flagging
//!   write-write and read-write conflicts.
//!
//! Diagnostics carry stable codes (`TIR-OOB`, `TIR-RACE-WW`, ...) and a
//! [`Severity`]: `Deny` means the config must not be measured (the
//! evaluator surfaces it as `MeasureError::StaticReject`), `Warn` means
//! the analyzer could not prove safety but has no certificate of a bug.

pub mod bounds;
pub mod deps;
pub mod interval;

use crate::stmt::PrimFunc;
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Could not prove safety; measurement may proceed.
    Warn,
    /// Proven (or unprovably) unsafe; the config must be rejected.
    Deny,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Stable diagnostic codes emitted by the analyzer.
pub mod codes {
    /// A buffer access is provably out of bounds.
    pub const OOB: &str = "TIR-OOB";
    /// An index expression falls outside the analyzable fragment.
    pub const UNANALYZABLE: &str = "TIR-UNANALYZABLE";
    /// Two iterations of a parallel loop write the same element.
    pub const RACE_WW: &str = "TIR-RACE-WW";
    /// A parallel iteration reads an element another iteration writes.
    pub const RACE_RW: &str = "TIR-RACE-RW";
    /// A potential race that the dependence test could not resolve.
    pub const RACE_MAYBE: &str = "TIR-RACE-MAYBE";
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable machine-readable code (see [`codes`]).
    pub code: &'static str,
    /// Deny or Warn.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Name of the buffer involved, when the finding is access-shaped.
    pub buffer: Option<String>,
    /// Rendered access path, e.g. `C[((i*16) + j)] dim 0`.
    pub access: Option<String>,
    /// Loop variable the finding is attached to (race findings).
    pub loop_var: Option<String>,
}

impl Diagnostic {
    /// Construct a Deny diagnostic with just a code and message.
    pub fn deny(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Deny,
            message: message.into(),
            buffer: None,
            access: None,
            loop_var: None,
        }
    }

    /// Construct a Warn diagnostic with just a code and message.
    pub fn warn(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warn,
            ..Diagnostic::deny(code, message)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        )?;
        if let Some(access) = &self.access {
            write!(f, "\n  --> {access}")?;
        }
        Ok(())
    }
}

/// The full result of analyzing one lowered function.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Name of the analyzed function.
    pub function: String,
    /// All findings, bounds first then dependence.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True when any finding is `Deny`.
    pub fn is_rejected(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// The Deny findings only.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// One-line summary used as the `StaticReject` error message.
    pub fn reject_summary(&self) -> String {
        let n = self.denials().count();
        match self.denials().next() {
            Some(first) if n == 1 => format!("{}: {}", first.code, first.message),
            Some(first) => format!("{}: {} (+{} more)", first.code, first.message, n - 1),
            None => "accepted".to_string(),
        }
    }

    /// Rendered multi-line text report.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "schedule-safety report for `{}`: {}\n",
            self.function,
            if self.is_rejected() {
                "REJECT"
            } else {
                "accept"
            }
        );
        if self.diagnostics.is_empty() {
            out.push_str("  no findings\n");
        }
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }

    /// Machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let diags: Vec<serde_json::Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                serde_json::json!({
                    "code": d.code,
                    "severity": d.severity.label(),
                    "message": d.message,
                    "buffer": d.buffer,
                    "access": d.access,
                    "loop_var": d.loop_var,
                })
            })
            .collect();
        serde_json::json!({
            "function": self.function,
            "verdict": if self.is_rejected() { "reject" } else { "accept" },
            "diagnostics": diags,
        })
        .to_string()
    }
}

/// Run the full analyzer (bounds + parallel dependence) on a lowered
/// function.
pub fn check(func: &PrimFunc) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    bounds::check_bounds(func, &mut diagnostics);
    deps::check_parallel_deps(func, &mut diagnostics);
    AnalysisReport {
        function: func.name.clone(),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_render_and_json() {
        let mut r = AnalysisReport {
            function: "mm".into(),
            diagnostics: vec![],
        };
        assert!(!r.is_rejected());
        assert!(r.render_text().contains("accept"));
        r.diagnostics.push(Diagnostic {
            buffer: Some("C".into()),
            access: Some("C[i] dim 0".into()),
            ..Diagnostic::deny(codes::OOB, "index exceeds extent")
        });
        r.diagnostics
            .push(Diagnostic::warn(codes::RACE_MAYBE, "unresolved dependence"));
        assert!(r.is_rejected());
        assert_eq!(r.denials().count(), 1);
        let text = r.render_text();
        assert!(text.contains("REJECT"));
        assert!(text.contains("deny[TIR-OOB]"));
        assert!(text.contains("warn[TIR-RACE-MAYBE]"));
        let json = r.to_json();
        assert!(json.contains("\"verdict\":\"reject\""));
        assert!(json.contains("TIR-OOB"));
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(parsed.get("function").and_then(|v| v.as_str()), Some("mm"));
    }

    #[test]
    fn reject_summary_counts() {
        let mut r = AnalysisReport::default();
        assert_eq!(r.reject_summary(), "accepted");
        r.diagnostics.push(Diagnostic::deny(codes::OOB, "first"));
        assert_eq!(r.reject_summary(), "TIR-OOB: first");
        r.diagnostics
            .push(Diagnostic::deny(codes::RACE_WW, "second"));
        assert_eq!(r.reject_summary(), "TIR-OOB: first (+1 more)");
    }
}
