//! Static schedule-safety analysis over lowered TIR.
//!
//! Runs before any compilation or measurement and answers one question:
//! *is it safe to execute this scheduled function?* Two passes feed a
//! shared diagnostic stream:
//!
//! * [`bounds`] — abstract interpretation over the integer [`interval`]
//!   domain, proving every buffer access in-bounds (or reporting the
//!   offending access path),
//! * [`deps`] — a dependence test over the iterations of
//!   `ForKind::Parallel` / `ForKind::Vectorized` loops, flagging
//!   write-write and read-write conflicts.
//!
//! Diagnostics carry stable codes (`TIR-OOB`, `TIR-RACE-WW`, ...) and a
//! [`Severity`]: `Deny` means the config must not be measured (the
//! evaluator surfaces it as `MeasureError::StaticReject`), `Warn` means
//! the analyzer could not prove safety but has no certificate of a bug.

pub mod bounds;
pub mod deps;
pub mod interval;
pub mod oracle;
pub mod prelint;

use crate::stmt::PrimFunc;
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Could not prove safety; measurement may proceed.
    Warn,
    /// Proven (or unprovably) unsafe; the config must be rejected.
    Deny,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Stable diagnostic codes emitted by the analyzer.
pub mod codes {
    /// A buffer access is provably out of bounds.
    pub const OOB: &str = "TIR-OOB";
    /// An index expression falls outside the analyzable fragment.
    pub const UNANALYZABLE: &str = "TIR-UNANALYZABLE";
    /// Two iterations of a parallel loop write the same element.
    pub const RACE_WW: &str = "TIR-RACE-WW";
    /// A parallel iteration reads an element another iteration writes.
    pub const RACE_RW: &str = "TIR-RACE-RW";
    /// A potential race that the dependence test could not resolve.
    pub const RACE_MAYBE: &str = "TIR-RACE-MAYBE";
    /// A split factor below 1 yields a loop with no iterations.
    pub const TRIP_ZERO: &str = "TIR-TRIP-ZERO";
    /// A vectorize factor exceeds the trip count of its loop.
    pub const VEC_OVER: &str = "TIR-VEC-OVER";
    /// A fuse of two axes that are not adjacent in the loop order.
    pub const FUSE_ILLEGAL: &str = "TIR-FUSE-ILLEGAL";
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable machine-readable code (see [`codes`]).
    pub code: &'static str,
    /// Deny or Warn.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Name of the buffer involved, when the finding is access-shaped.
    pub buffer: Option<String>,
    /// Rendered access path, e.g. `C[((i*16) + j)] dim 0`.
    pub access: Option<String>,
    /// Loop variable the finding is attached to (race findings).
    pub loop_var: Option<String>,
}

impl Diagnostic {
    /// Construct a Deny diagnostic with just a code and message.
    pub fn deny(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Deny,
            message: message.into(),
            buffer: None,
            access: None,
            loop_var: None,
        }
    }

    /// Construct a Warn diagnostic with just a code and message.
    pub fn warn(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warn,
            ..Diagnostic::deny(code, message)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        )?;
        if let Some(access) = &self.access {
            write!(f, "\n  --> {access}")?;
        }
        Ok(())
    }
}

/// The full result of analyzing one lowered function.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Name of the analyzed function.
    pub function: String,
    /// All findings, bounds first then dependence.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True when any finding is `Deny`.
    pub fn is_rejected(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// The Deny findings only.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
    }

    /// One-line summary used as the `StaticReject` error message.
    pub fn reject_summary(&self) -> String {
        let n = self.denials().count();
        match self.denials().next() {
            Some(first) if n == 1 => format!("{}: {}", first.code, first.message),
            Some(first) => format!("{}: {} (+{} more)", first.code, first.message, n - 1),
            None => "accepted".to_string(),
        }
    }

    /// Rendered multi-line text report.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "schedule-safety report for `{}`: {}\n",
            self.function,
            if self.is_rejected() {
                "REJECT"
            } else {
                "accept"
            }
        );
        if self.diagnostics.is_empty() {
            out.push_str("  no findings\n");
        }
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }

    /// Machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let diags: Vec<serde_json::Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                serde_json::json!({
                    "code": d.code,
                    "severity": d.severity.label(),
                    "message": d.message,
                    "buffer": d.buffer,
                    "access": d.access,
                    "loop_var": d.loop_var,
                })
            })
            .collect();
        serde_json::json!({
            "function": self.function,
            "verdict": if self.is_rejected() { "reject" } else { "accept" },
            "diagnostics": diags,
        })
        .to_string()
    }
}

/// Run the full analyzer (bounds + parallel dependence) on a lowered
/// function.
pub fn check(func: &PrimFunc) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    bounds::check_bounds(func, &mut diagnostics);
    deps::check_parallel_deps(func, &mut diagnostics);
    AnalysisReport {
        function: func.name.clone(),
        diagnostics,
    }
}

/// Which stage of the pruning pipeline produced a denial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneStage {
    /// The pre-lowering schedule legality prelint (no IR built).
    Prelint,
    /// The full analyzer over the instantiated function.
    Analysis,
}

/// Verdict for one candidate in a batch prune.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Statically safe as far as the analyzer can tell.
    Admit,
    /// Must not be compiled or measured.
    Deny {
        /// Pipeline stage that produced the denial.
        stage: PruneStage,
        /// The `Deny` diagnostics justifying the verdict.
        diagnostics: Vec<Diagnostic>,
    },
}

/// Result of statically filtering a batch of candidates.
#[derive(Debug, Clone, Default)]
pub struct PruneReport {
    /// One verdict per input, in order.
    pub verdicts: Vec<Verdict>,
    /// Candidates admitted to compilation/measurement.
    pub admitted: u64,
    /// Candidates denied by the prelint (never instantiated).
    pub prelint_denied: u64,
    /// Candidates denied by the analyzer on the instantiated function.
    pub analyzer_denied: u64,
    /// Denial counts per stable diagnostic code, sorted by code.
    pub by_code: Vec<(String, u64)>,
}

impl PruneReport {
    /// Record an admission.
    pub fn admit(&mut self) {
        self.admitted += 1;
        self.verdicts.push(Verdict::Admit);
    }

    /// Record a denial, counting each distinct code once per candidate.
    pub fn deny(&mut self, stage: PruneStage, diagnostics: Vec<Diagnostic>) {
        match stage {
            PruneStage::Prelint => self.prelint_denied += 1,
            PruneStage::Analysis => self.analyzer_denied += 1,
        }
        let mut codes: Vec<&str> = diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.code)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        for code in codes {
            match self.by_code.iter_mut().find(|(c, _)| c == code) {
                Some((_, n)) => *n += 1,
                None => self.by_code.push((code.to_string(), 1)),
            }
        }
        self.by_code.sort();
        self.verdicts.push(Verdict::Deny { stage, diagnostics });
    }

    /// Total candidates examined.
    pub fn total(&self) -> u64 {
        self.admitted + self.prelint_denied + self.analyzer_denied
    }

    /// Fraction of candidates denied (0 when the batch was empty).
    pub fn fraction_denied(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.prelint_denied + self.analyzer_denied) as f64 / self.total() as f64
        }
    }

    /// True when candidate `i` was admitted.
    pub fn is_admitted(&self, i: usize) -> bool {
        matches!(self.verdicts.get(i), Some(Verdict::Admit))
    }
}

/// Statically filter a batch: run the cheap `prelint` first, and only
/// when it passes call `analyze` (which typically instantiates the
/// schedule and runs [`check`]). `analyze` returning `None` means the
/// candidate could not be instantiated even though the prelint passed —
/// it is denied under [`codes::UNANALYZABLE`].
pub fn prune_with<T>(
    items: &[T],
    mut prelint: impl FnMut(&T) -> Vec<Diagnostic>,
    mut analyze: impl FnMut(&T) -> Option<AnalysisReport>,
) -> PruneReport {
    let mut report = PruneReport::default();
    for item in items {
        let lint = prelint(item);
        if lint.iter().any(|d| d.severity == Severity::Deny) {
            report.deny(PruneStage::Prelint, lint);
            continue;
        }
        match analyze(item) {
            Some(analysis) if analysis.is_rejected() => {
                report.deny(PruneStage::Analysis, analysis.diagnostics);
            }
            Some(_) => report.admit(),
            None => report.deny(
                PruneStage::Analysis,
                vec![Diagnostic::deny(
                    codes::UNANALYZABLE,
                    "candidate failed to instantiate after a clean prelint",
                )],
            ),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_render_and_json() {
        let mut r = AnalysisReport {
            function: "mm".into(),
            diagnostics: vec![],
        };
        assert!(!r.is_rejected());
        assert!(r.render_text().contains("accept"));
        r.diagnostics.push(Diagnostic {
            buffer: Some("C".into()),
            access: Some("C[i] dim 0".into()),
            ..Diagnostic::deny(codes::OOB, "index exceeds extent")
        });
        r.diagnostics
            .push(Diagnostic::warn(codes::RACE_MAYBE, "unresolved dependence"));
        assert!(r.is_rejected());
        assert_eq!(r.denials().count(), 1);
        let text = r.render_text();
        assert!(text.contains("REJECT"));
        assert!(text.contains("deny[TIR-OOB]"));
        assert!(text.contains("warn[TIR-RACE-MAYBE]"));
        let json = r.to_json();
        assert!(json.contains("\"verdict\":\"reject\""));
        assert!(json.contains("TIR-OOB"));
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(parsed.get("function").and_then(|v| v.as_str()), Some("mm"));
    }

    #[test]
    fn prune_batches_and_counts_by_code() {
        // Items are (prelint-denies, analyzer-denies) pairs.
        let items = [(false, false), (true, false), (false, true), (true, true)];
        let report = prune_with(
            &items,
            |&(lint, _)| {
                if lint {
                    vec![Diagnostic::deny(codes::TRIP_ZERO, "zero tile")]
                } else {
                    vec![]
                }
            },
            |&(_, bad)| {
                let mut r = AnalysisReport {
                    function: "f".into(),
                    diagnostics: vec![],
                };
                if bad {
                    r.diagnostics
                        .push(Diagnostic::deny(codes::RACE_WW, "race"));
                }
                Some(r)
            },
        );
        assert_eq!(report.total(), 4);
        assert_eq!(report.admitted, 1);
        assert_eq!(report.prelint_denied, 2); // prelint wins over analysis
        assert_eq!(report.analyzer_denied, 1);
        assert!((report.fraction_denied() - 0.75).abs() < 1e-12);
        assert!(report.is_admitted(0));
        assert!(!report.is_admitted(1));
        assert_eq!(
            report.by_code,
            vec![
                (codes::RACE_WW.to_string(), 1),
                (codes::TRIP_ZERO.to_string(), 2)
            ]
        );
    }

    #[test]
    fn prune_denies_uninstantiable_after_clean_prelint() {
        let report = prune_with(&[()], |_| vec![], |_| None);
        assert_eq!(report.analyzer_denied, 1);
        assert!(matches!(
            &report.verdicts[0],
            Verdict::Deny {
                stage: PruneStage::Analysis,
                ..
            }
        ));
    }

    #[test]
    fn reject_summary_counts() {
        let mut r = AnalysisReport::default();
        assert_eq!(r.reject_summary(), "accepted");
        r.diagnostics.push(Diagnostic::deny(codes::OOB, "first"));
        assert_eq!(r.reject_summary(), "TIR-OOB: first");
        r.diagnostics
            .push(Diagnostic::deny(codes::RACE_WW, "second"));
        assert_eq!(r.reject_summary(), "TIR-OOB: first (+1 more)");
    }
}
