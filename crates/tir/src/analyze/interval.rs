//! Integer interval domain for abstract interpretation of index
//! expressions.
//!
//! Intervals are closed ranges `[lo, hi]` over `i64` with saturating
//! endpoint arithmetic (`i64::MIN`/`i64::MAX` double as "unbounded").
//! An empty interval (`lo > hi`) denotes unreachable code: any access
//! under an empty environment is trivially safe.

use std::collections::HashMap;
use tvm_te::{BinOp, CmpOp, PrimExpr};

/// Closed integer range `[lo, hi]`; empty when `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// Clamp an `i128` intermediate back into the `i64` endpoint space.
fn clamp(v: i128) -> i64 {
    if v > i64::MAX as i128 {
        i64::MAX
    } else if v < i64::MIN as i128 {
        i64::MIN
    } else {
        v as i64
    }
}

impl Interval {
    /// The full `i64` range (used for unconstrained values).
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// Construct `[lo, hi]`.
    pub fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    /// Single value `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Canonical empty interval.
    pub fn empty() -> Interval {
        Interval { lo: 1, hi: 0 }
    }

    /// `lo > hi` — no concrete value, i.e. unreachable.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Exact value if the interval is a single point.
    pub fn as_point(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// True when every value of `self` lies within `[lo, hi]`.
    pub fn within(&self, lo: i64, hi: i64) -> bool {
        self.is_empty() || (self.lo >= lo && self.hi <= hi)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Whether the two ranges share at least one value.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: clamp(self.lo as i128 + other.lo as i128),
            hi: clamp(self.hi as i128 + other.hi as i128),
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: clamp(self.lo as i128 - other.hi as i128),
            hi: clamp(self.hi as i128 - other.lo as i128),
        }
    }

    /// Pointwise product (corner analysis).
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        let corners = [
            self.lo as i128 * other.lo as i128,
            self.lo as i128 * other.hi as i128,
            self.hi as i128 * other.lo as i128,
            self.hi as i128 * other.hi as i128,
        ];
        Interval {
            lo: clamp(*corners.iter().min().expect("nonempty")),
            hi: clamp(*corners.iter().max().expect("nonempty")),
        }
    }

    /// Pointwise minimum.
    pub fn min_with(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Pointwise maximum.
    pub fn max_with(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Euclidean floor division. `None` when the divisor may be zero —
    /// the caller treats that as unanalyzable.
    pub fn floordiv(&self, other: &Interval) -> Option<Interval> {
        if self.is_empty() || other.is_empty() {
            return Some(Interval::empty());
        }
        if other.lo <= 0 && other.hi >= 0 {
            return None;
        }
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for a in [self.lo, self.hi] {
            for b in [other.lo, other.hi] {
                let q = a.div_euclid(b);
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Some(Interval { lo, hi })
    }

    /// Euclidean remainder: result lies in `[0, max|divisor| - 1]`.
    /// `None` when the divisor may be zero.
    pub fn floormod(&self, other: &Interval) -> Option<Interval> {
        if self.is_empty() || other.is_empty() {
            return Some(Interval::empty());
        }
        if other.lo <= 0 && other.hi >= 0 {
            return None;
        }
        let m = other.lo.unsigned_abs().max(other.hi.unsigned_abs());
        // When the whole dividend range falls inside one period of a
        // point divisor the remainder is exact.
        if let Some(d) = other.as_point() {
            let (qlo, qhi) = (self.lo.div_euclid(d), self.hi.div_euclid(d));
            if qlo == qhi {
                return Some(Interval {
                    lo: self.lo.rem_euclid(d),
                    hi: self.hi.rem_euclid(d),
                });
            }
        }
        Some(Interval {
            lo: 0,
            hi: clamp(m as i128 - 1),
        })
    }
}

/// A structural refinement fact: "expression `expr` lies in `range`".
///
/// Facts are derived from enclosing `if` guards and matched against
/// sub-expressions by structural equality (`PrimExpr: PartialEq`), which
/// is how split-induced `min`/`max` guards tighten interior index terms.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// The constrained expression.
    pub expr: PrimExpr,
    /// Its proven range.
    pub range: Interval,
}

/// Evaluation context: loop-variable ranges plus guard-derived facts.
#[derive(Debug, Clone, Default)]
pub struct IntervalEnv {
    /// Loop variable id → its value range.
    pub vars: HashMap<u64, Interval>,
    /// Structural facts from enclosing guards.
    pub constraints: Vec<Constraint>,
}

impl IntervalEnv {
    /// Environment with the given variable ranges and no constraints.
    pub fn with_vars(vars: HashMap<u64, Interval>) -> IntervalEnv {
        IntervalEnv {
            vars,
            constraints: Vec::new(),
        }
    }

    /// True when any bound variable or guard renders this context
    /// unreachable.
    pub fn unreachable(&self) -> bool {
        self.vars.values().any(Interval::is_empty)
            || self.constraints.iter().any(|c| {
                // Evaluating the constrained expression refines it with
                // every matching fact, exposing empty intersections.
                eval_interval(&c.expr, self)
                    .map(|iv| iv.is_empty())
                    .unwrap_or(false)
            })
    }

    fn refine(&self, e: &PrimExpr, base: Interval) -> Interval {
        let mut r = base;
        for c in &self.constraints {
            if &c.expr == e {
                r = r.intersect(&c.range);
            }
        }
        r
    }
}

/// Abstractly evaluate an integer expression to an interval.
///
/// Returns `None` for constructs outside the affine-ish fragment
/// (tensor reads, float casts, possibly-zero divisors, unbound
/// variables) — callers must treat `None` as "cannot prove safe".
pub fn eval_interval(e: &PrimExpr, env: &IntervalEnv) -> Option<Interval> {
    let base = match e {
        PrimExpr::IntImm(v, _) => Interval::point(*v),
        PrimExpr::BoolImm(b) => Interval::point(*b as i64),
        PrimExpr::Var(v) => *env.vars.get(&v.id)?,
        PrimExpr::Binary(op, a, b) => {
            let (ia, ib) = (eval_interval(a, env)?, eval_interval(b, env)?);
            match op {
                BinOp::Add => ia.add(&ib),
                BinOp::Sub => ia.sub(&ib),
                BinOp::Mul => ia.mul(&ib),
                BinOp::Div | BinOp::FloorDiv => ia.floordiv(&ib)?,
                BinOp::FloorMod => ia.floormod(&ib)?,
                BinOp::Min => ia.min_with(&ib),
                BinOp::Max => ia.max_with(&ib),
            }
        }
        PrimExpr::Cmp(op, a, b) => {
            let (ia, ib) = (eval_interval(a, env)?, eval_interval(b, env)?);
            if ia.is_empty() || ib.is_empty() {
                Interval::empty()
            } else {
                let always = match op {
                    CmpOp::Lt => ia.hi < ib.lo,
                    CmpOp::Le => ia.hi <= ib.lo,
                    CmpOp::Gt => ia.lo > ib.hi,
                    CmpOp::Ge => ia.lo >= ib.hi,
                    CmpOp::Eq => ia.as_point().is_some() && ia == ib,
                    CmpOp::Ne => !ia.overlaps(&ib),
                };
                let never = match op {
                    CmpOp::Lt => ia.lo >= ib.hi,
                    CmpOp::Le => ia.lo > ib.hi,
                    CmpOp::Gt => ia.hi <= ib.lo,
                    CmpOp::Ge => ia.hi < ib.lo,
                    CmpOp::Eq => !ia.overlaps(&ib),
                    CmpOp::Ne => ia.as_point().is_some() && ia == ib,
                };
                if always {
                    Interval::point(1)
                } else if never {
                    Interval::point(0)
                } else {
                    Interval::new(0, 1)
                }
            }
        }
        PrimExpr::And(a, b) | PrimExpr::Or(a, b) => {
            let (ia, ib) = (eval_interval(a, env)?, eval_interval(b, env)?);
            if ia.is_empty() || ib.is_empty() {
                Interval::empty()
            } else {
                Interval::new(0, 1).intersect(&Interval::new(ia.lo.min(ib.lo), ia.hi.max(ib.hi)))
            }
        }
        PrimExpr::Not(a) => {
            let ia = eval_interval(a, env)?;
            match ia.as_point() {
                _ if ia.is_empty() => Interval::empty(),
                Some(0) => Interval::point(1),
                Some(_) => Interval::point(0),
                None => Interval::new(0, 1),
            }
        }
        PrimExpr::Select(c, t, f) => {
            let ic = eval_interval(c, env)?;
            if ic.is_empty() {
                Interval::empty()
            } else {
                match ic.as_point() {
                    Some(0) => eval_interval(f, env)?,
                    Some(_) => eval_interval(t, env)?,
                    None => {
                        let (it, inf) = (eval_interval(t, env)?, eval_interval(f, env)?);
                        Interval::new(it.lo.min(inf.lo), it.hi.max(inf.hi))
                    }
                }
            }
        }
        PrimExpr::Cast(t, a) if t.is_int() => eval_interval(a, env)?,
        _ => return None,
    };
    Some(env.refine(e, base))
}

/// Derive structural constraints implied by a guard condition being true.
///
/// Conjunctions are split; comparisons against interval-evaluable sides
/// become facts on the opposite side. `Not` flips the comparison. `Or`
/// yields nothing (a sound under-approximation).
pub fn constraints_from_guard(cond: &PrimExpr, env: &IntervalEnv, out: &mut Vec<Constraint>) {
    match cond {
        PrimExpr::And(a, b) => {
            constraints_from_guard(a, env, out);
            constraints_from_guard(b, env, out);
        }
        PrimExpr::Not(inner) => {
            if let PrimExpr::Cmp(op, a, b) = &**inner {
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Ge,
                    CmpOp::Le => CmpOp::Gt,
                    CmpOp::Gt => CmpOp::Le,
                    CmpOp::Ge => CmpOp::Lt,
                    CmpOp::Eq => CmpOp::Ne,
                    CmpOp::Ne => CmpOp::Eq,
                };
                constraint_from_cmp(flipped, a, b, env, out);
            }
        }
        PrimExpr::Cmp(op, a, b) => constraint_from_cmp(*op, a, b, env, out),
        _ => {}
    }
}

fn constraint_from_cmp(
    op: CmpOp,
    a: &PrimExpr,
    b: &PrimExpr,
    env: &IntervalEnv,
    out: &mut Vec<Constraint>,
) {
    // `a op b`: bound `a` using the interval of `b`, and vice versa.
    if let Some(ib) = eval_interval(b, env) {
        if let Some(range) = range_of_lhs(op, &ib) {
            out.push(Constraint {
                expr: a.clone(),
                range,
            });
        }
    }
    if let Some(ia) = eval_interval(a, env) {
        let mirrored = match op {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        };
        if let Some(range) = range_of_lhs(mirrored, &ia) {
            out.push(Constraint {
                expr: b.clone(),
                range,
            });
        }
    }
}

/// Range implied for the left side of `lhs op rhs` given `rhs`'s range.
fn range_of_lhs(op: CmpOp, rhs: &Interval) -> Option<Interval> {
    if rhs.is_empty() {
        return Some(Interval::empty());
    }
    Some(match op {
        CmpOp::Lt => Interval::new(i64::MIN, clamp(rhs.hi as i128 - 1)),
        CmpOp::Le => Interval::new(i64::MIN, rhs.hi),
        CmpOp::Gt => Interval::new(clamp(rhs.lo as i128 + 1), i64::MAX),
        CmpOp::Ge => Interval::new(rhs.lo, i64::MAX),
        CmpOp::Eq => *rhs,
        CmpOp::Ne => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::ops::{cmp, floordiv, floormod, int};
    use tvm_te::Var;

    fn env1(v: &Var, lo: i64, hi: i64) -> IntervalEnv {
        let mut vars = HashMap::new();
        vars.insert(v.id, Interval::new(lo, hi));
        IntervalEnv::with_vars(vars)
    }

    #[test]
    fn affine_index_interval() {
        let i = Var::index("i");
        let env = env1(&i, 0, 15);
        // 4*i + 3 over i in [0,15] -> [3, 63]
        let e = i.expr() * 4 + 3;
        assert_eq!(eval_interval(&e, &env), Some(Interval::new(3, 63)));
    }

    #[test]
    fn split_div_mod_shape() {
        let i = Var::index("i");
        let env = env1(&i, 0, 63);
        // floordiv(i, 16) in [0, 3]; floormod(i, 16) in [0, 15]
        assert_eq!(
            eval_interval(&floordiv(i.expr(), int(16)), &env),
            Some(Interval::new(0, 3))
        );
        assert_eq!(
            eval_interval(&floormod(i.expr(), int(16)), &env),
            Some(Interval::new(0, 15))
        );
    }

    #[test]
    fn mod_exact_within_one_period() {
        let i = Var::index("i");
        let env = env1(&i, 17, 20);
        assert_eq!(
            eval_interval(&floormod(i.expr(), int(16)), &env),
            Some(Interval::new(1, 4))
        );
    }

    #[test]
    fn division_by_possible_zero_is_unanalyzable() {
        let i = Var::index("i");
        let env = env1(&i, -1, 1);
        assert_eq!(eval_interval(&floordiv(int(4), i.expr()), &env), None);
    }

    #[test]
    fn guard_constraint_tightens() {
        let i = Var::index("i");
        let mut env = env1(&i, 0, 99);
        // if i < 50 { ... }: i refined to [0, 49]
        let cond = cmp::lt(i.expr(), int(50));
        let mut cs = Vec::new();
        constraints_from_guard(&cond, &env, &mut cs);
        env.constraints = cs;
        assert_eq!(eval_interval(&i.expr(), &env), Some(Interval::new(0, 49)));
    }

    #[test]
    fn negated_guard_constraint() {
        let i = Var::index("i");
        let mut env = env1(&i, 0, 99);
        // else-branch of `if i < 50`: i >= 50
        let cond = PrimExpr::Not(std::sync::Arc::new(cmp::lt(i.expr(), int(50))));
        let mut cs = Vec::new();
        constraints_from_guard(&cond, &env, &mut cs);
        env.constraints = cs;
        assert_eq!(eval_interval(&i.expr(), &env), Some(Interval::new(50, 99)));
    }

    #[test]
    fn structural_constraint_on_compound_expr() {
        // Guard on `i*4` (not a bare var) still refines `i*4 + 1`.
        let i = Var::index("i");
        let mut env = env1(&i, 0, 99);
        let prod = i.expr() * 4;
        let cond = cmp::le(prod.clone(), int(40));
        let mut cs = Vec::new();
        constraints_from_guard(&cond, &env, &mut cs);
        env.constraints = cs;
        let e = prod + 1;
        assert_eq!(eval_interval(&e, &env), Some(Interval::new(1, 41)));
    }

    #[test]
    fn empty_interval_is_unreachable() {
        let i = Var::index("i");
        let mut env = env1(&i, 0, 9);
        let cond = cmp::gt(i.expr(), int(100));
        let mut cs = Vec::new();
        constraints_from_guard(&cond, &env, &mut cs);
        env.constraints = cs;
        assert!(env.unreachable());
    }

    #[test]
    fn saturation_does_not_wrap() {
        let i = Var::index("i");
        let env = env1(&i, 0, i64::MAX);
        let e = i.expr() * 4 + 3;
        let r = eval_interval(&e, &env).expect("interval");
        assert_eq!(r.hi, i64::MAX);
        assert!(r.lo <= 3);
    }
}
