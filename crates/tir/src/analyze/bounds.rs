//! Buffer-access bounds proofs via abstract interpretation.
//!
//! Walks the statement tree propagating loop-variable ranges through
//! index expressions (including the `min`/`max`/`floordiv`/`floormod`
//! shapes produced by split schedules) and checks every `BufferStore`
//! target and `TensorRead` against the storage extents. Enclosing `if`
//! guards refine the ranges, so tail-guarded partial tiles prove clean.
//!
//! Every access is either *proven in-bounds*, *proven unreachable*
//! (empty interval), or reported: a provable violation is `TIR-OOB`,
//! an index outside the analyzable fragment is `TIR-UNANALYZABLE`.
//! Both are `Deny` — soundness requires rejecting what we cannot prove.

use super::interval::{constraints_from_guard, eval_interval, Interval, IntervalEnv};
use super::{codes, Diagnostic, Severity};
use crate::stmt::{PrimFunc, Stmt};
use tvm_te::PrimExpr;

/// Check all buffer accesses of `func`, appending findings to `out`.
pub fn check_bounds(func: &PrimFunc, out: &mut Vec<Diagnostic>) {
    let mut env = IntervalEnv::default();
    walk(&func.body, &mut env, out);
}

fn walk(stmt: &Stmt, env: &mut IntervalEnv, out: &mut Vec<Diagnostic>) {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            body,
            ..
        } => {
            let range = if *extent <= 0 {
                Interval::empty()
            } else {
                Interval::new(*min, min + extent - 1)
            };
            let prev = env.vars.insert(var.id, range);
            walk(body, env, out);
            match prev {
                Some(p) => {
                    env.vars.insert(var.id, p);
                }
                None => {
                    env.vars.remove(&var.id);
                }
            }
        }
        Stmt::IfThenElse { cond, then, else_ } => {
            let depth = env.constraints.len();
            let mut facts = Vec::new();
            constraints_from_guard(cond, env, &mut facts);
            env.constraints.extend(facts);
            walk(then, env, out);
            env.constraints.truncate(depth);
            if let Some(e) = else_ {
                let negated = PrimExpr::Not(std::sync::Arc::new(cond.clone()));
                let mut facts = Vec::new();
                constraints_from_guard(&negated, env, &mut facts);
                env.constraints.extend(facts);
                walk(e, env, out);
                env.constraints.truncate(depth);
            }
        }
        Stmt::Seq(items) => {
            for s in items {
                walk(s, env, out);
            }
        }
        Stmt::BufferStore {
            buffer,
            indices,
            value,
        } => {
            if env.unreachable() {
                return;
            }
            check_access(&buffer.name, &buffer.shape, indices, true, env, out);
            check_reads_in(value, env, out);
            for idx in indices {
                check_reads_in(idx, env, out);
            }
        }
        Stmt::Evaluate(e) => {
            if !env.unreachable() {
                check_reads_in(e, env, out);
            }
        }
        Stmt::Nop => {}
    }
}

/// Check every `TensorRead` nested anywhere in `e`.
fn check_reads_in(e: &PrimExpr, env: &IntervalEnv, out: &mut Vec<Diagnostic>) {
    tvm_te::visitor::walk(e, &mut |node| {
        if let PrimExpr::TensorRead(t, idx) = node {
            check_access(t.name(), t.shape(), idx, false, env, out);
        }
    });
}

/// Prove one multi-dimensional access in-bounds or report it.
fn check_access(
    name: &str,
    shape: &[usize],
    indices: &[PrimExpr],
    is_write: bool,
    env: &IntervalEnv,
    out: &mut Vec<Diagnostic>,
) {
    let what = if is_write { "store to" } else { "read of" };
    for (d, idx) in indices.iter().enumerate().take(shape.len()) {
        let extent = shape[d] as i64;
        match eval_interval(idx, env) {
            None => out.push(Diagnostic {
                code: codes::UNANALYZABLE,
                severity: Severity::Deny,
                message: format!(
                    "cannot bound index of {what} `{name}` dim {d}: `{idx}` \
                     is outside the analyzable fragment"
                ),
                buffer: Some(name.to_string()),
                access: Some(format!("{name}[{idx}] dim {d}")),
                loop_var: None,
            }),
            Some(iv) if iv.is_empty() => {} // unreachable: trivially safe
            Some(iv) if !iv.within(0, extent - 1) => out.push(Diagnostic {
                code: codes::OOB,
                severity: Severity::Deny,
                message: format!(
                    "{what} `{name}` dim {d}: index range [{}, {}] exceeds \
                     extent {extent}",
                    iv.lo, iv.hi
                ),
                buffer: Some(name.to_string()),
                access: Some(format!("{name}[{idx}] dim {d}")),
                loop_var: None,
            }),
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::stmt::ForKind;
    use tvm_te::ops::{cmp, int};
    use tvm_te::{DType, Var};

    fn nest(var: &Var, extent: i64, body: Stmt) -> Stmt {
        Stmt::For {
            var: var.clone(),
            min: 0,
            extent,
            kind: ForKind::Serial,
            body: Box::new(body),
        }
    }

    fn func(body: Stmt, bufs: Vec<std::sync::Arc<Buffer>>) -> PrimFunc {
        PrimFunc {
            name: "t".into(),
            params: bufs,
            allocs: vec![],
            body,
        }
    }

    fn run(f: &PrimFunc) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_bounds(f, &mut out);
        out
    }

    #[test]
    fn in_bounds_access_is_clean() {
        let i = Var::index("i");
        let b = Buffer::new("b", [16usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![i.expr()],
            value: tvm_te::ops::float(0.0),
        };
        assert!(run(&func(nest(&i, 16, store), vec![b])).is_empty());
    }

    #[test]
    fn off_by_one_store_is_denied() {
        let i = Var::index("i");
        let b = Buffer::new("b", [16usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![i.expr() + 1],
            value: tvm_te::ops::float(0.0),
        };
        let diags = run(&func(nest(&i, 16, store), vec![b]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::OOB);
        assert_eq!(diags[0].severity, Severity::Deny);
        assert_eq!(diags[0].buffer.as_deref(), Some("b"));
        assert!(diags[0].message.contains("[1, 16]"));
    }

    #[test]
    fn guard_makes_overhanging_tile_safe() {
        // for io in 0..4, ii in 0..5: if io*5+ii < 18 { b[io*5+ii] = 0 }
        let (io, ii) = (Var::index("io"), Var::index("ii"));
        let b = Buffer::new("b", [18usize], DType::F32);
        let idx = io.expr() * 5 + ii.expr();
        let guarded = Stmt::IfThenElse {
            cond: cmp::lt(idx.clone(), int(18)),
            then: Box::new(Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![idx.clone()],
                value: tvm_te::ops::float(0.0),
            }),
            else_: None,
        };
        let f = func(nest(&io, 4, nest(&ii, 5, guarded)), vec![b.clone()]);
        assert!(run(&f).is_empty(), "guarded tile must prove clean");

        // Without the guard the same nest overruns: [0, 19] vs extent 18.
        let bare = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![idx],
            value: tvm_te::ops::float(0.0),
        };
        let f = func(nest(&io, 4, nest(&ii, 5, bare)), vec![b]);
        let diags = run(&f);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::OOB);
    }

    #[test]
    fn read_out_of_bounds_is_denied() {
        let i = Var::index("i");
        let a = tvm_te::placeholder([8], DType::F32, "A");
        let b = Buffer::new("b", [16usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![i.expr()],
            value: a.at(&[i.expr()]),
        };
        let diags = run(&func(nest(&i, 16, store), vec![b]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::OOB);
        assert_eq!(diags[0].buffer.as_deref(), Some("A"));
        assert!(diags[0].message.contains("read of"));
    }

    #[test]
    fn zero_extent_loop_body_is_unreachable() {
        let i = Var::index("i");
        let b = Buffer::new("b", [4usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![int(100)],
            value: tvm_te::ops::float(0.0),
        };
        assert!(run(&func(nest(&i, 0, store), vec![b])).is_empty());
    }

    #[test]
    fn else_branch_uses_negated_guard() {
        // for i in 0..20: if i < 10 { b[i] } else { b[i - 10] }
        let i = Var::index("i");
        let b = Buffer::new("b", [10usize], DType::F32);
        let mk = |idx: PrimExpr| Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![idx],
            value: tvm_te::ops::float(0.0),
        };
        let body = Stmt::IfThenElse {
            cond: cmp::lt(i.expr(), int(10)),
            then: Box::new(mk(i.expr())),
            else_: Some(Box::new(mk(i.expr() - 10))),
        };
        assert!(run(&func(nest(&i, 20, body), vec![b])).is_empty());
    }

    #[test]
    fn unanalyzable_index_is_denied() {
        // Index depends on a read value: outside the affine fragment.
        let i = Var::index("i");
        let a = tvm_te::placeholder([16], DType::I64, "A");
        let b = Buffer::new("b", [16usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![a.at(&[i.expr()])],
            value: tvm_te::ops::float(0.0),
        };
        let diags = run(&func(nest(&i, 16, store), vec![b]));
        assert!(diags.iter().any(|d| d.code == codes::UNANALYZABLE));
    }
}
