//! Pre-lowering schedule legality prelint.
//!
//! Aggressive configuration spaces deliberately include schedules that
//! cannot even be *instantiated*: zero tile factors (a `split` by 0
//! panics), fuses of non-adjacent axes, vectorize factors wider than the
//! loop they apply to. Those must be rejected before `instantiate` runs,
//! so the prelint operates on *declared schedule facts* — the mold
//! reports each split/fuse/vectorize it would perform, and the prelint
//! turns illegal ones into `Deny` diagnostics with stable codes
//! (`TIR-TRIP-ZERO`, `TIR-VEC-OVER`, `TIR-FUSE-ILLEGAL`).
//!
//! The prelint is intentionally cheaper than instantiation: a handful of
//! integer comparisons per config, no IR is built.

use super::{codes, Diagnostic};

/// Accumulates schedule facts and the diagnostics they imply.
#[derive(Debug, Default)]
pub struct Prelint {
    diags: Vec<Diagnostic>,
}

impl Prelint {
    /// Fresh prelint with no findings.
    pub fn new() -> Prelint {
        Prelint::default()
    }

    /// Declare a `split(axis, factor)`. A factor below 1 produces a loop
    /// with no iterations and panics at instantiation (`TIR-TRIP-ZERO`).
    pub fn split(&mut self, axis: &str, factor: i64) -> &mut Self {
        if factor < 1 {
            self.diags.push(Diagnostic {
                loop_var: Some(axis.to_string()),
                ..Diagnostic::deny(
                    codes::TRIP_ZERO,
                    format!("split of `{axis}` by factor {factor} yields an empty trip count"),
                )
            });
        }
        self
    }

    /// Declare a `vectorize` of a loop with `trip` iterations by
    /// `factor` lanes. A factor exceeding the trip count cannot fill its
    /// vector lanes (`TIR-VEC-OVER`); factors below 1 are `TIR-TRIP-ZERO`
    /// (the vector loop is materialized via a split).
    pub fn vectorize(&mut self, axis: &str, trip: i64, factor: i64) -> &mut Self {
        if factor < 1 {
            return self.split(axis, factor);
        }
        if factor > trip {
            self.diags.push(Diagnostic {
                loop_var: Some(axis.to_string()),
                ..Diagnostic::deny(
                    codes::VEC_OVER,
                    format!(
                        "vectorize of `{axis}` by {factor} lanes exceeds its \
                         trip count {trip}; lanes would be masked"
                    ),
                )
            });
        }
        self
    }

    /// Declare a `fuse(outer, inner)`. Fusing is only defined for axes
    /// that are adjacent in the current loop order; anything else panics
    /// at instantiation (`TIR-FUSE-ILLEGAL`).
    pub fn fuse(&mut self, outer: &str, inner: &str, adjacent: bool) -> &mut Self {
        if !adjacent {
            self.diags.push(Diagnostic {
                loop_var: Some(outer.to_string()),
                ..Diagnostic::deny(
                    codes::FUSE_ILLEGAL,
                    format!("fuse of `{outer}` with `{inner}`: axes are not adjacent"),
                )
            });
        }
        self
    }

    /// True when any declared fact was illegal.
    pub fn is_rejected(&self) -> bool {
        !self.diags.is_empty()
    }

    /// Consume the prelint, yielding its diagnostics (all `Deny`).
    pub fn finish(self) -> Vec<Diagnostic> {
        self.diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::Severity;

    #[test]
    fn legal_facts_are_clean() {
        let mut p = Prelint::new();
        p.split("y", 8)
            .split("x", 5)
            .vectorize("x.inner", 8, 4)
            .fuse("y.outer", "x.outer", true);
        assert!(!p.is_rejected());
        assert!(p.finish().is_empty());
    }

    #[test]
    fn zero_factor_split_is_denied() {
        let mut p = Prelint::new();
        p.split("y", 0);
        let diags = p.finish();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::TRIP_ZERO);
        assert_eq!(diags[0].severity, Severity::Deny);
        assert_eq!(diags[0].loop_var.as_deref(), Some("y"));
    }

    #[test]
    fn oversized_vectorize_is_denied() {
        let mut p = Prelint::new();
        p.vectorize("x.inner", 4, 8);
        let diags = p.finish();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::VEC_OVER);
    }

    #[test]
    fn exact_width_vectorize_is_legal() {
        let mut p = Prelint::new();
        p.vectorize("x.inner", 8, 8);
        assert!(!p.is_rejected());
    }

    #[test]
    fn zero_lane_vectorize_is_trip_zero() {
        let mut p = Prelint::new();
        p.vectorize("x.inner", 8, 0);
        let diags = p.finish();
        assert_eq!(diags[0].code, codes::TRIP_ZERO);
    }

    #[test]
    fn non_adjacent_fuse_is_denied() {
        let mut p = Prelint::new();
        p.fuse("y.outer", "k", false);
        let diags = p.finish();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::FUSE_ILLEGAL);
    }

    #[test]
    fn findings_accumulate() {
        let mut p = Prelint::new();
        p.split("y", 0).split("x", -3).fuse("a", "b", false);
        assert_eq!(p.finish().len(), 3);
    }
}
