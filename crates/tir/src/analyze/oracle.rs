//! Concrete violation oracles for analyzer denials.
//!
//! The analyzer's `Deny` verdicts are abstract certificates; the
//! differential soundness suite cross-checks each one against a concrete
//! witness so a miscalibrated analyzer cannot silently starve the tuner:
//!
//! * [`confirm_race`] exhaustively enumerates the iterations of the
//!   denied parallel/vectorized loop and exhibits two distinct
//!   iterations touching the same element (with a write involved);
//! * [`confirm_masked_vector`] confirms a `TIR-VEC-OVER` denial by
//!   finding a vectorized loop whose body is masked by a guard on its
//!   own variable — lanes that cannot all be live.
//!
//! Prelint denials that abort instantiation (`TIR-TRIP-ZERO`,
//! `TIR-FUSE-ILLEGAL`) are confirmed by the instantiation panic itself
//! and need no oracle here.

use super::Diagnostic;
use crate::analysis::eval_int;
use crate::stmt::{ForKind, PrimFunc, Stmt};
use std::collections::HashMap;
use tvm_te::PrimExpr;

/// Evaluation budget for the exhaustive enumeration: enough for every
/// mini/small PolyBench nest, small enough to stay interactive.
const BUDGET: u64 = 4_000_000;

/// Confirm a race denial (`TIR-RACE-WW` / `TIR-RACE-RW`) by concrete
/// enumeration: find the denied loop (named by `diag.loop_var`), run its
/// body for every iteration with outer loops pinned at their minima, and
/// return `true` iff two *distinct* iterations access the same element
/// of `diag.buffer` with at least one write.
pub fn confirm_race(func: &PrimFunc, diag: &Diagnostic) -> bool {
    let (Some(loop_name), Some(buffer)) = (diag.loop_var.as_deref(), diag.buffer.as_deref())
    else {
        return false;
    };
    let mut env: HashMap<u64, i64> = HashMap::new();
    locate_and_check(&func.body, &mut env, loop_name, buffer)
}

fn locate_and_check(
    stmt: &Stmt,
    env: &mut HashMap<u64, i64>,
    loop_name: &str,
    buffer: &str,
) -> bool {
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            if var.name == loop_name
                && matches!(kind, ForKind::Parallel | ForKind::Vectorized)
                && *extent >= 2
                && witness_in_loop(var.id, *min, *extent, body, env, buffer)
            {
                return true;
            }
            env.insert(var.id, *min);
            let found = locate_and_check(body, env, loop_name, buffer);
            env.remove(&var.id);
            found
        }
        Stmt::IfThenElse { then, else_, .. } => {
            locate_and_check(then, env, loop_name, buffer)
                || else_
                    .as_ref()
                    .is_some_and(|e| locate_and_check(e, env, loop_name, buffer))
        }
        Stmt::Seq(items) => items
            .iter()
            .any(|s| locate_and_check(s, env, loop_name, buffer)),
        _ => false,
    }
}

/// One access observed during enumeration: which iteration of the denied
/// loop made it, at which linear offset, and whether it wrote.
type Trace = HashMap<i64, Vec<(i64, bool)>>;

fn witness_in_loop(
    par_id: u64,
    par_min: i64,
    par_extent: i64,
    body: &Stmt,
    env: &mut HashMap<u64, i64>,
    buffer: &str,
) -> bool {
    let mut trace: Trace = HashMap::new();
    let mut budget = BUDGET;
    for t in par_min..par_min + par_extent {
        env.insert(par_id, t);
        let ok = exec(body, env, t, buffer, &mut trace, &mut budget);
        if !ok {
            env.remove(&par_id);
            return false; // budget exhausted or unanalyzable: no witness
        }
    }
    env.remove(&par_id);
    trace.values().any(|accesses| {
        accesses.iter().any(|&(t1, w1)| {
            w1 && accesses.iter().any(|&(t2, _)| t2 != t1)
                || accesses.iter().any(|&(t2, w2)| w2 && t2 != t1)
        })
    })
}

fn exec(
    stmt: &Stmt,
    env: &mut HashMap<u64, i64>,
    t: i64,
    buffer: &str,
    trace: &mut Trace,
    budget: &mut u64,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    match stmt {
        Stmt::For {
            var,
            min,
            extent,
            body,
            ..
        } => {
            for v in *min..min + extent {
                env.insert(var.id, v);
                if !exec(body, env, t, buffer, trace, budget) {
                    env.remove(&var.id);
                    return false;
                }
            }
            env.remove(&var.id);
            true
        }
        Stmt::IfThenElse { cond, then, else_ } => match eval_int(cond, env) {
            Some(0) => else_
                .as_ref()
                .is_none_or(|e| exec(e, env, t, buffer, trace, budget)),
            Some(_) => exec(then, env, t, buffer, trace, budget),
            // Unanalyzable guard: over-approximate by taking both arms.
            None => {
                exec(then, env, t, buffer, trace, budget)
                    && else_
                        .as_ref()
                        .is_none_or(|e| exec(e, env, t, buffer, trace, budget))
            }
        },
        Stmt::Seq(items) => items
            .iter()
            .all(|s| exec(s, env, t, buffer, trace, budget)),
        Stmt::BufferStore {
            buffer: b,
            indices,
            value,
        } => {
            if b.name == buffer {
                match linear_offset(indices, &b.shape, env) {
                    Some(off) => trace.entry(off).or_default().push((t, true)),
                    None => return false,
                }
            }
            for e in indices.iter().chain(std::iter::once(value)) {
                if !record_reads(e, env, t, buffer, trace) {
                    return false;
                }
            }
            true
        }
        Stmt::Evaluate(e) => record_reads(e, env, t, buffer, trace),
        Stmt::Nop => true,
    }
}

fn record_reads(
    e: &PrimExpr,
    env: &HashMap<u64, i64>,
    t: i64,
    buffer: &str,
    trace: &mut Trace,
) -> bool {
    let mut ok = true;
    tvm_te::visitor::walk(e, &mut |node| {
        if let PrimExpr::TensorRead(tensor, idx) = node {
            if tensor.name() == buffer {
                match linear_offset(idx, tensor.shape(), env) {
                    Some(off) => trace.entry(off).or_default().push((t, false)),
                    None => ok = false,
                }
            }
        }
    });
    ok
}

fn linear_offset(indices: &[PrimExpr], shape: &[usize], env: &HashMap<u64, i64>) -> Option<i64> {
    let mut off = 0i64;
    let mut stride = 1i64;
    for d in (0..shape.len().min(indices.len())).rev() {
        off = off.checked_add(eval_int(&indices[d], env)?.checked_mul(stride)?)?;
        stride = stride.checked_mul(shape[d] as i64)?;
    }
    Some(off)
}

/// Confirm a `TIR-VEC-OVER` verdict on the *instantiated* function: the
/// oversized vector split materializes as a `Vectorized` loop whose body
/// is masked by a guard mentioning its own variable, i.e. some lanes can
/// never be live.
pub fn confirm_masked_vector(func: &PrimFunc) -> bool {
    fn mentions(e: &PrimExpr, id: u64) -> bool {
        let mut found = false;
        tvm_te::visitor::walk(e, &mut |node| {
            if let PrimExpr::Var(v) = node {
                found |= v.id == id;
            }
        });
        found
    }
    fn guard_on(stmt: &Stmt, id: u64) -> bool {
        let mut found = false;
        stmt.walk(&mut |s| {
            if let Stmt::IfThenElse { cond, .. } = s {
                found |= mentions(cond, id);
            }
        });
        found
    }
    let mut found = false;
    func.body.walk(&mut |s| {
        if let Stmt::For {
            var,
            kind: ForKind::Vectorized,
            body,
            ..
        } = s
        {
            found |= guard_on(body, var.id);
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{check, codes};
    use crate::buffer::Buffer;
    use tvm_te::ops::{cmp, float, int};
    use tvm_te::{DType, Var};

    fn for_(var: &Var, extent: i64, kind: ForKind, body: Stmt) -> Stmt {
        Stmt::For {
            var: var.clone(),
            min: 0,
            extent,
            kind,
            body: Box::new(body),
        }
    }

    fn func(body: Stmt, bufs: Vec<std::sync::Arc<Buffer>>) -> PrimFunc {
        PrimFunc {
            name: "t".into(),
            params: bufs,
            allocs: vec![],
            body,
        }
    }

    #[test]
    fn reduction_race_denial_is_confirmed() {
        // parallel k: C[0] = C[0] + A[k] — the denial's witness is any
        // pair of iterations, both writing offset 0.
        let k = Var::index("k");
        let c = Buffer::new("C", [1usize], DType::F32);
        let a = tvm_te::placeholder([8], DType::F32, "A");
        let c_t = tvm_te::placeholder([1], DType::F32, "C");
        let body = for_(
            &k,
            8,
            ForKind::Parallel,
            Stmt::BufferStore {
                buffer: c.clone(),
                indices: vec![int(0)],
                value: c_t.at(&[int(0)]) + a.at(&[k.expr()]),
            },
        );
        let f = func(body, vec![c]);
        let report = check(&f);
        let denial = report
            .denials()
            .find(|d| d.code == codes::RACE_WW)
            .expect("reduction must be denied");
        assert!(confirm_race(&f, denial));
    }

    #[test]
    fn clean_parallel_loop_yields_no_witness() {
        // parallel i: B[i] = 0 — a fabricated denial must NOT confirm.
        let i = Var::index("i");
        let b = Buffer::new("B", [8usize], DType::F32);
        let body = for_(
            &i,
            8,
            ForKind::Parallel,
            Stmt::BufferStore {
                buffer: b.clone(),
                indices: vec![i.expr()],
                value: float(0.0),
            },
        );
        let f = func(body, vec![b]);
        let fake = Diagnostic {
            buffer: Some("B".into()),
            loop_var: Some("i".into()),
            ..Diagnostic::deny(codes::RACE_WW, "fabricated")
        };
        assert!(!confirm_race(&f, &fake));
    }

    #[test]
    fn overlapping_tiles_witness_found_under_guard() {
        // parallel io: for ii in 0..6: if io*4+ii < 14 { B[io*4+ii] = 0 }
        // — tiles overlap by 2 even inside the guarded region.
        let (io, ii) = (Var::index("io"), Var::index("ii"));
        let b = Buffer::new("B", [14usize], DType::F32);
        let idx = io.expr() * 4 + ii.expr();
        let body = for_(
            &io,
            4,
            ForKind::Parallel,
            for_(
                &ii,
                6,
                ForKind::Serial,
                Stmt::IfThenElse {
                    cond: cmp::lt(idx.clone(), int(14)),
                    then: Box::new(Stmt::BufferStore {
                        buffer: b.clone(),
                        indices: vec![idx],
                        value: float(0.0),
                    }),
                    else_: None,
                },
            ),
        );
        let f = func(body, vec![b]);
        let fake = Diagnostic {
            buffer: Some("B".into()),
            loop_var: Some("io".into()),
            ..Diagnostic::deny(codes::RACE_WW, "overlap")
        };
        assert!(confirm_race(&f, &fake));
    }

    #[test]
    fn masked_vector_loop_is_detected() {
        // vectorized v in 0..8: if v < 5 { B[v] = 0 } — masked lanes.
        let v = Var::index("v");
        let b = Buffer::new("B", [5usize], DType::F32);
        let body = for_(
            &v,
            8,
            ForKind::Vectorized,
            Stmt::IfThenElse {
                cond: cmp::lt(v.expr(), int(5)),
                then: Box::new(Stmt::BufferStore {
                    buffer: b.clone(),
                    indices: vec![v.expr()],
                    value: float(0.0),
                }),
                else_: None,
            },
        );
        assert!(confirm_masked_vector(&func(body, vec![b])));

        // Full-width vector loop: no mask, no finding.
        let v2 = Var::index("v");
        let b2 = Buffer::new("B", [8usize], DType::F32);
        let clean = for_(
            &v2,
            8,
            ForKind::Vectorized,
            Stmt::BufferStore {
                buffer: b2.clone(),
                indices: vec![v2.expr()],
                value: float(0.0),
            },
        );
        assert!(!confirm_masked_vector(&func(clean, vec![b2])));
    }
}
