//! Imperative TIR construction.
//!
//! Kernels with loop-carried dependences (PolyBench LU, Cholesky) cannot be
//! written as pure tensor expressions, so their code molds build loop nests
//! directly. The [`FuncBuilder`] registers parameter tensors (reads go
//! through `TensorRead` exactly like lowered TE code, so the interpreter
//! and cost model treat both paths identically) and finalizes into a
//! verified [`PrimFunc`].

use crate::buffer::Buffer;
use crate::stmt::{ForKind, PrimFunc, Stmt};
use std::sync::Arc;
use tvm_te::{PrimExpr, Tensor, Var};

/// Builder for hand-constructed TIR functions.
pub struct FuncBuilder {
    name: String,
    params: Vec<Arc<Buffer>>,
}

impl FuncBuilder {
    /// Start building a function.
    pub fn new(name: impl Into<String>) -> FuncBuilder {
        FuncBuilder {
            name: name.into(),
            params: Vec::new(),
        }
    }

    /// Register a parameter tensor; returns its backing buffer for use in
    /// [`store`]. Parameters appear in registration order.
    pub fn param(&mut self, t: &Tensor) -> Arc<Buffer> {
        let b = Buffer::from_tensor(t);
        self.params.push(b.clone());
        b
    }

    /// Finalize: simplify and verify the body.
    ///
    /// # Panics
    /// If verification fails (scoping/rank/buffer errors).
    pub fn build(self, body: Stmt) -> PrimFunc {
        let body = crate::passes::simplify::simplify_stmt(&body);
        let body = crate::passes::vectorize::legalize_vector_loops(&body);
        let func = PrimFunc {
            name: self.name,
            params: self.params,
            allocs: Vec::new(),
            body,
        };
        crate::passes::verify::verify(&func).expect("built function failed verification");
        func
    }
}

/// A `for` loop with the given kind; the closure receives the loop
/// variable as an expression.
pub fn for_kind(
    name: impl Into<String>,
    extent: i64,
    kind: ForKind,
    f: impl FnOnce(PrimExpr) -> Stmt,
) -> Stmt {
    let var = Var::index(name);
    let body = f(var.expr());
    Stmt::For {
        var,
        min: 0,
        extent,
        kind,
        body: Box::new(body),
    }
}

/// Serial loop `for name in 0..extent`.
pub fn ser(name: impl Into<String>, extent: i64, f: impl FnOnce(PrimExpr) -> Stmt) -> Stmt {
    for_kind(name, extent, ForKind::Serial, f)
}

/// Parallel loop.
pub fn par(name: impl Into<String>, extent: i64, f: impl FnOnce(PrimExpr) -> Stmt) -> Stmt {
    for_kind(name, extent, ForKind::Parallel, f)
}

/// Two nested serial loops; the closure receives `(outer, inner)`.
pub fn ser2(
    n0: impl Into<String>,
    e0: i64,
    n1: impl Into<String>,
    e1: i64,
    f: impl FnOnce(PrimExpr, PrimExpr) -> Stmt,
) -> Stmt {
    let n1 = n1.into();
    ser(n0, e0, move |a| ser(n1, e1, move |b| f(a, b)))
}

/// Store `value` into `buffer[indices]`.
pub fn store(buffer: &Arc<Buffer>, indices: &[PrimExpr], value: PrimExpr) -> Stmt {
    Stmt::BufferStore {
        buffer: buffer.clone(),
        indices: indices.to_vec(),
        value,
    }
}

/// `if cond { then }`.
pub fn when(cond: PrimExpr, then: Stmt) -> Stmt {
    Stmt::IfThenElse {
        cond,
        then: Box::new(then),
        else_: None,
    }
}

/// `if cond { then } else { other }`.
pub fn if_else(cond: PrimExpr, then: Stmt, other: Stmt) -> Stmt {
    Stmt::IfThenElse {
        cond,
        then: Box::new(then),
        else_: Some(Box::new(other)),
    }
}

/// Sequence a list of statements.
pub fn seq(items: impl IntoIterator<Item = Stmt>) -> Stmt {
    items.into_iter().fold(Stmt::Nop, |acc, s| acc.then(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_te::ops::cmp;
    use tvm_te::{placeholder, DType};

    #[test]
    fn builds_verified_inplace_kernel() {
        // A[i][j] += 1 for j < i  (in-place, guarded)
        let n = 8usize;
        let a = placeholder([n, n], DType::F32, "A");
        let mut fb = FuncBuilder::new("tri_inc");
        let ab = fb.param(&a);
        let body = ser2("i", n as i64, "j", n as i64, |i, j| {
            when(
                cmp::lt(j.clone(), i.clone()),
                store(
                    &ab,
                    &[i.clone(), j.clone()],
                    a.at(&[i, j]) + PrimExpr::FloatImm(1.0, DType::F32),
                ),
            )
        });
        let f = fb.build(body);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.body.loop_depth(), 2);
        assert_eq!(f.body.store_count(), 1);
    }

    #[test]
    fn seq_drops_nops() {
        let s = seq([Stmt::Nop, Stmt::Nop]);
        assert!(matches!(s, Stmt::Nop));
    }

    #[test]
    #[should_panic(expected = "failed verification")]
    fn build_rejects_unscoped_vars() {
        let n = 4usize;
        let a = placeholder([n], DType::F32, "A");
        let mut fb = FuncBuilder::new("bad");
        let ab = fb.param(&a);
        let ghost = Var::index("ghost");
        let body = store(&ab, &[ghost.expr()], PrimExpr::FloatImm(0.0, DType::F32));
        let _ = fb.build(body);
    }
}
