//! Pretty-printing of TIR statements and functions.

use crate::stmt::{ForKind, PrimFunc, Stmt};
use std::fmt;

fn indent(f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    for _ in 0..level {
        f.write_str("  ")?;
    }
    Ok(())
}

fn print_stmt(s: &Stmt, f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    match s {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            indent(f, level)?;
            let kw = match kind {
                ForKind::ThreadBinding(tag) => {
                    writeln!(
                        f,
                        "bind {} = {} in [{}, {}) {{",
                        var.name,
                        tag.name(),
                        min,
                        min + extent
                    )?;
                    print_stmt(body, f, level + 1)?;
                    indent(f, level)?;
                    return writeln!(f, "}}");
                }
                k => k.keyword(),
            };
            writeln!(f, "{kw} {} in [{}, {}) {{", var.name, min, min + extent)?;
            print_stmt(body, f, level + 1)?;
            indent(f, level)?;
            writeln!(f, "}}")
        }
        Stmt::BufferStore {
            buffer,
            indices,
            value,
        } => {
            indent(f, level)?;
            write!(f, "{}[", buffer.name)?;
            for (n, i) in indices.iter().enumerate() {
                if n > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{i}")?;
            }
            writeln!(f, "] = {value}")
        }
        Stmt::IfThenElse { cond, then, else_ } => {
            indent(f, level)?;
            writeln!(f, "if {cond} {{")?;
            print_stmt(then, f, level + 1)?;
            if let Some(e) = else_ {
                indent(f, level)?;
                writeln!(f, "}} else {{")?;
                print_stmt(e, f, level + 1)?;
            }
            indent(f, level)?;
            writeln!(f, "}}")
        }
        Stmt::Seq(items) => {
            for s in items {
                print_stmt(s, f, level)?;
            }
            Ok(())
        }
        Stmt::Evaluate(e) => {
            indent(f, level)?;
            writeln!(f, "eval {e}")
        }
        Stmt::Nop => Ok(()),
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_stmt(self, f, 0)
    }
}

impl fmt::Display for PrimFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (n, p) in self.params.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for a in &self.allocs {
            writeln!(f, "  alloc {a}")?;
        }
        print_stmt(&self.body, f, 1)?;
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::lower::lower;
    use tvm_te::{compute, placeholder, DType, Schedule};

    #[test]
    fn prints_function() {
        let a = placeholder([4, 4], DType::F32, "A");
        let b = compute([4, 4], "B", |i| a.at(&[i[0].clone(), i[1].clone()]) + 1i64);
        let s = Schedule::create(&[b.clone()]);
        let f = lower(&s, &[a, b], "add1");
        let text = format!("{f}");
        assert!(text.contains("fn add1("), "got: {text}");
        assert!(text.contains("for i in [0, 4)"), "got: {text}");
        assert!(text.contains("B[i, j] ="), "got: {text}");
    }
}
