//! Brute-force differential tests for the bounds analyzer's access
//! extraction.
//!
//! Each case builds a schedule-shaped loop nest by hand — the split,
//! reorder, vectorize and unroll index shapes that the 3mm, Cholesky and
//! LU molds actually lower to — and enumerates every reachable iteration
//! concretely. The ground truth (all accesses in bounds, or at least one
//! out of bounds) must agree with the analyzer's verdict on both sides:
//! no missed violation, no phantom rejection.

use std::collections::HashMap;
use std::sync::Arc;
use tvm_te::ops::cmp::{le, lt};
use tvm_te::ops::{floordiv, floormod, int, max_expr, min_expr};
use tvm_te::{ops, DType, PrimExpr, Var};
use tvm_tir::analysis::eval_int;
use tvm_tir::analyze;
use tvm_tir::{Buffer, ForKind, PrimFunc, Stmt};

/// Enumerate every reachable `(buffer, indices)` access of `func` and
/// report whether all of them are in bounds. Panics on loops too large
/// to enumerate — these tests keep extents tiny on purpose.
fn brute_force_in_bounds(func: &PrimFunc) -> bool {
    type Access = (Vec<i64>, Vec<usize>);

    fn expr_reads(e: &PrimExpr, env: &HashMap<u64, i64>, out: &mut Vec<Access>) {
        tvm_te::visitor::walk(e, &mut |node| {
            if let PrimExpr::TensorRead(t, idx) = node {
                let vals = idx
                    .iter()
                    .map(|i| eval_int(i, env).expect("enumerable index"))
                    .collect();
                out.push((vals, t.shape().to_vec()));
            }
        });
    }

    fn run(stmt: &Stmt, env: &mut HashMap<u64, i64>, out: &mut Vec<Access>) {
        match stmt {
            Stmt::For {
                var,
                min,
                extent,
                body,
                ..
            } => {
                assert!(*extent <= 64, "test nests must stay enumerable");
                for v in *min..min + extent.max(&0) {
                    let prev = env.insert(var.id, v);
                    run(body, env, out);
                    match prev {
                        Some(p) => {
                            env.insert(var.id, p);
                        }
                        None => {
                            env.remove(&var.id);
                        }
                    }
                }
            }
            Stmt::IfThenElse { cond, then, else_ } => {
                if eval_int(cond, env).expect("enumerable guard") != 0 {
                    run(then, env, out);
                } else if let Some(e) = else_ {
                    run(e, env, out);
                }
            }
            Stmt::Seq(stmts) => {
                for s in stmts {
                    run(s, env, out);
                }
            }
            Stmt::BufferStore {
                buffer,
                indices,
                value,
            } => {
                let vals: Vec<i64> = indices
                    .iter()
                    .map(|i| eval_int(i, env).expect("enumerable index"))
                    .collect();
                out.push((vals, buffer.shape.clone()));
                for i in indices {
                    expr_reads(i, env, out);
                }
                expr_reads(value, env, out);
            }
            Stmt::Evaluate(e) => expr_reads(e, env, out),
            Stmt::Nop => {}
        }
    }

    let mut env = HashMap::new();
    let mut accesses = Vec::new();
    run(&func.body, &mut env, &mut accesses);
    assert!(!accesses.is_empty(), "nest must actually touch memory");
    accesses.iter().all(|(idx, shape)| {
        idx.len() == shape.len() && idx.iter().zip(shape).all(|(&i, &e)| 0 <= i && i < e as i64)
    })
}

/// The analyzer and the enumeration must agree on `func`.
fn assert_agreement(func: &PrimFunc, context: &str) {
    let safe = brute_force_in_bounds(func);
    let report = analyze::check(func);
    // Race diagnostics are out of scope here: only compare bounds codes.
    let bounds_rejected = report
        .denials()
        .any(|d| d.code == analyze::codes::OOB || d.code == analyze::codes::UNANALYZABLE);
    if safe {
        assert!(
            !bounds_rejected,
            "{context}: enumeration proves safety but analyzer rejected:\n{}",
            report.render_text()
        );
    } else {
        assert!(
            bounds_rejected,
            "{context}: enumeration found an OOB access but analyzer accepted"
        );
    }
}

fn for_(var: &Var, min_: i64, extent: i64, kind: ForKind, body: Stmt) -> Stmt {
    Stmt::For {
        var: var.clone(),
        min: min_,
        extent,
        kind,
        body: Box::new(body),
    }
}

fn func(name: &str, body: Stmt, bufs: Vec<Arc<Buffer>>) -> PrimFunc {
    PrimFunc {
        name: name.into(),
        params: bufs,
        allocs: vec![],
        body,
    }
}

/// 3mm-shaped: `E[i,j] += A[i,k] * B[k,j]` with `i` split into
/// `(io, ii)` on a non-dividing tile and a `min`-clamped tail, `k`
/// unrolled. The tail clamp `min(T, N - io*T)` is the exact shape the
/// repo's split lowering emits.
fn mm3_split_nest(n: i64, tile: i64, shift: i64) -> PrimFunc {
    let (io, ii, j, k) = (
        Var::index("io"),
        Var::index("ii"),
        Var::index("j"),
        Var::index("k"),
    );
    let e = Buffer::new("E", [n as usize, n as usize], DType::F64);
    let a = tvm_te::placeholder([n as usize, n as usize], DType::F64, "A");
    let b = tvm_te::placeholder([n as usize, n as usize], DType::F64, "B");
    let e_read = tvm_te::placeholder([n as usize, n as usize], DType::F64, "E");
    let i_expr = io.expr() * tile + ii.expr() + shift;
    let store = Stmt::BufferStore {
        buffer: e.clone(),
        indices: vec![i_expr.clone(), j.expr()],
        value: e_read.at(&[i_expr.clone(), j.expr()])
            + a.at(&[i_expr, k.expr()]) * b.at(&[k.expr(), j.expr()]),
    };
    let outer_tiles = (n + tile - 1) / tile;
    let body = for_(
        &io,
        0,
        outer_tiles,
        ForKind::Serial,
        for_(
            &ii,
            0,
            tile,
            ForKind::Serial,
            Stmt::IfThenElse {
                cond: lt(io.expr() * tile + ii.expr(), int(n)),
                then: Box::new(for_(
                    &j,
                    0,
                    n,
                    ForKind::Serial,
                    for_(&k, 0, n, ForKind::Unrolled, store),
                )),
                else_: None,
            },
        ),
    );
    func("mm3_split", body, vec![e])
}

/// Cholesky-shaped triangular nest: guarded `j <= i` accesses of a
/// square buffer, reordered so `j` is outermost (reorder must not
/// change the verdict).
fn cholesky_triangular_nest(n: i64, widen: bool) -> PrimFunc {
    let (j, i) = (Var::index("j"), Var::index("i"));
    let a_buf = Buffer::new("A", [n as usize, n as usize], DType::F64);
    let a = tvm_te::placeholder([n as usize, n as usize], DType::F64, "A");
    let extent = if widen { n + 1 } else { n };
    let store = Stmt::BufferStore {
        buffer: a_buf.clone(),
        indices: vec![i.expr(), j.expr()],
        value: a.at(&[i.expr(), j.expr()]) / a.at(&[j.expr(), j.expr()]),
    };
    // reorder(j, i): j outermost, triangular guard keeps j <= i.
    let body = for_(
        &j,
        0,
        n,
        ForKind::Serial,
        for_(
            &i,
            0,
            extent,
            ForKind::Serial,
            Stmt::IfThenElse {
                cond: le(j.expr(), i.expr()),
                then: Box::new(store),
                else_: None,
            },
        ),
    );
    func("cholesky_tri", body, vec![a_buf])
}

/// LU-shaped fused-then-split nest: a single fused variable `f` over
/// `i*n + j` is recovered via `f / n` and `f % n` — the floordiv/floormod
/// index shape of fused schedules — with the inner column loop
/// vectorized.
fn lu_fused_divmod_nest(n: i64, denom: i64) -> PrimFunc {
    let (f, k) = (Var::index("f"), Var::index("k"));
    let a_buf = Buffer::new("A", [n as usize, n as usize], DType::F64);
    let a = tvm_te::placeholder([n as usize, n as usize], DType::F64, "A");
    let row = floordiv(f.expr(), int(denom));
    let col = floormod(f.expr(), int(denom));
    let store = Stmt::BufferStore {
        buffer: a_buf.clone(),
        indices: vec![row.clone(), col.clone()],
        value: a.at(&[row, k.expr()]) * a.at(&[k.expr(), col]),
    };
    let body = for_(
        &f,
        0,
        n * n,
        ForKind::Serial,
        for_(&k, 0, n, ForKind::Vectorized, store),
    );
    func("lu_fused", body, vec![a_buf])
}

/// min/max-clamped boundary access — the stencil-ish shape `A[max(0,
/// min(i + off, n-1))]` stays in bounds for any offset.
fn clamped_neighbor_nest(n: i64, off: i64, clamp: bool) -> PrimFunc {
    let i = Var::index("i");
    let b = Buffer::new("B", [n as usize], DType::F64);
    let a = tvm_te::placeholder([n as usize], DType::F64, "A2");
    let raw = i.expr() + int(off);
    let idx = if clamp {
        max_expr(int(0), min_expr(raw, int(n - 1)))
    } else {
        raw
    };
    let store = Stmt::BufferStore {
        buffer: b.clone(),
        indices: vec![i.expr()],
        value: a.at(&[idx]),
    };
    let a_storage = Buffer::new("A2", [n as usize], DType::F64);
    func(
        "clamped",
        for_(&i, 0, n, ForKind::Serial, store),
        vec![b, a_storage],
    )
}

#[test]
fn mm3_split_with_tail_guard_agrees() {
    // 10 % 4 != 0: the tail tile is partial and only the guard saves it.
    assert_agreement(&mm3_split_nest(10, 4, 0), "3mm split, guarded tail");
    // Dividing tile: no partial tiles, still safe.
    assert_agreement(&mm3_split_nest(12, 4, 0), "3mm split, exact tiles");
}

#[test]
fn mm3_split_shifted_index_agrees() {
    // A +1 shift pushes the last guarded row out of bounds.
    assert_agreement(&mm3_split_nest(10, 4, 1), "3mm split, shifted");
    assert_agreement(&mm3_split_nest(12, 4, 2), "3mm split, shifted by 2");
}

#[test]
fn cholesky_triangular_guard_agrees() {
    assert_agreement(&cholesky_triangular_nest(8, false), "cholesky triangular");
    // Widening the guarded loop keeps j <= i <= n reachable at i = n.
    assert_agreement(&cholesky_triangular_nest(8, true), "cholesky widened");
}

#[test]
fn lu_fused_divmod_agrees() {
    // f/n, f%n over f in [0, n*n): exact cover of the square.
    assert_agreement(&lu_fused_divmod_nest(5, 5), "lu fused exact");
    // Dividing by n-1 overflows the row index at the top of the range.
    assert_agreement(&lu_fused_divmod_nest(5, 4), "lu fused wrong denominator");
}

#[test]
fn clamped_boundary_access_agrees() {
    assert_agreement(&clamped_neighbor_nest(9, 1, true), "clamped +1");
    assert_agreement(&clamped_neighbor_nest(9, -3, true), "clamped -3");
    // Without the clamp the +1 neighbor runs off the end.
    assert_agreement(&clamped_neighbor_nest(9, 1, false), "unclamped +1");
    // Offset 0 needs no clamp at all.
    assert_agreement(&clamped_neighbor_nest(9, 0, false), "identity");
}

#[test]
fn vectorized_and_unrolled_kinds_do_not_change_bounds_verdicts() {
    for kind in [
        ForKind::Serial,
        ForKind::Parallel,
        ForKind::Vectorized,
        ForKind::Unrolled,
    ] {
        let i = Var::index("i");
        let b = Buffer::new("B", [6usize], DType::F32);
        let store = Stmt::BufferStore {
            buffer: b.clone(),
            indices: vec![i.expr()],
            value: ops::float(1.0),
        };
        let f = func("kinds", for_(&i, 0, 6, kind, store), vec![b]);
        assert_agreement(&f, &format!("kind {kind:?}"));
    }
}
