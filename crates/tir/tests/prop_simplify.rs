//! Property tests: the simplifier must preserve integer-expression
//! semantics on randomly generated expression trees.

use proptest::prelude::*;
use std::collections::HashMap;
use tvm_te::ops::{cmp, int};
use tvm_te::{BinOp, PrimExpr, Var};
use tvm_tir::analysis::eval_int;
use tvm_tir::passes::simplify::simplify_expr;

/// A recipe for building a deterministic expression tree over three
/// variables, as a sequence of stack operations.
#[derive(Debug, Clone)]
enum Op {
    PushConst(i64),
    PushVar(u8),
    Binary(u8),
    Cmp(u8),
    Select,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-20i64..20).prop_map(Op::PushConst),
        (0u8..3).prop_map(Op::PushVar),
        (0u8..8).prop_map(Op::Binary),
        (0u8..6).prop_map(Op::Cmp),
        Just(Op::Select),
    ]
}

fn build(ops: &[Op], vars: &[Var; 3]) -> PrimExpr {
    let mut stack: Vec<PrimExpr> = Vec::new();
    for op in ops {
        match op {
            Op::PushConst(v) => stack.push(int(*v)),
            Op::PushVar(i) => stack.push(vars[*i as usize].expr()),
            Op::Binary(which) => {
                if stack.len() >= 2 {
                    let b = stack.pop().expect("len>=2");
                    let a = stack.pop().expect("len>=2");
                    let op = [
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::FloorDiv,
                        BinOp::FloorMod,
                        BinOp::Min,
                        BinOp::Max,
                        BinOp::Add,
                    ][*which as usize % 8];
                    stack.push(PrimExpr::binary(op, a, b));
                }
            }
            Op::Cmp(which) => {
                if stack.len() >= 2 {
                    let b = stack.pop().expect("len>=2");
                    let a = stack.pop().expect("len>=2");
                    let e = match which % 6 {
                        0 => cmp::lt(a, b),
                        1 => cmp::le(a, b),
                        2 => cmp::gt(a, b),
                        3 => cmp::ge(a, b),
                        4 => cmp::eq(a, b),
                        _ => cmp::ne(a, b),
                    };
                    // Comparisons as 0/1 integers keep the tree int-typed.
                    stack.push(tvm_te::select(e, int(1), int(0)));
                }
            }
            Op::Select => {
                if stack.len() >= 3 {
                    let f = stack.pop().expect("len>=3");
                    let t = stack.pop().expect("len>=3");
                    let c = stack.pop().expect("len>=3");
                    stack.push(tvm_te::select(cmp::ne(c, int(0)), t, f));
                }
            }
        }
    }
    stack.pop().unwrap_or_else(|| int(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn simplify_preserves_integer_semantics(
        ops in prop::collection::vec(op_strategy(), 1..40),
        vals in prop::array::uniform3(-50i64..50),
    ) {
        let vars = [Var::index("a"), Var::index("b"), Var::index("c")];
        let expr = build(&ops, &vars);
        let simplified = simplify_expr(&expr);

        let env: HashMap<u64, i64> = vars
            .iter()
            .zip(vals.iter())
            .map(|(v, &x)| (v.id, x))
            .collect();
        let before = eval_int(&expr, &env);
        let after = eval_int(&simplified, &env);
        // Division by zero makes eval return None; simplification must
        // never turn a defined expression into an undefined one or
        // change its value. (It may *define* a previously undefined
        // one only if folding removed a dead division — which our
        // simplifier does not do, so require exact agreement when the
        // original is defined.)
        if before.is_some() {
            prop_assert_eq!(after, before);
        }
    }

    #[test]
    fn simplify_is_idempotent(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let vars = [Var::index("a"), Var::index("b"), Var::index("c")];
        let expr = build(&ops, &vars);
        let once = simplify_expr(&expr);
        let twice = simplify_expr(&once);
        prop_assert_eq!(format!("{once}"), format!("{twice}"));
    }

    #[test]
    fn fully_constant_expressions_fold_to_literals(
        ops in prop::collection::vec(
            prop_oneof![
                (-20i64..20).prop_map(Op::PushConst),
                (0u8..3u8).prop_map(Op::Binary), // Add/Sub/Mul only: total
            ],
            1..30,
        ),
    ) {
        let vars = [Var::index("a"), Var::index("b"), Var::index("c")];
        let expr = build(&ops, &vars);
        let simplified = simplify_expr(&expr);
        prop_assert!(
            simplified.is_const(),
            "constant tree must fold completely: {simplified}"
        );
    }
}
