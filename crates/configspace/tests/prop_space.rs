//! Property tests over randomly shaped configuration spaces.

use configspace::{ConfigSpace, Hyperparameter};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Random discrete space: 1–5 ordinal parameters with 1–9 strictly
/// increasing integer values each.
fn space_strategy() -> impl Strategy<Value = ConfigSpace> {
    prop::collection::vec(prop::collection::btree_set(1i64..200, 1..9), 1..5).prop_map(|params| {
        let mut cs = ConfigSpace::new();
        for (i, values) in params.into_iter().enumerate() {
            let seq: Vec<i64> = values.into_iter().collect();
            cs.add(Hyperparameter::ordinal_ints(format!("P{i}"), &seq));
        }
        cs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn size_equals_grid_count(cs in space_strategy()) {
        let size = cs.size().expect("discrete") as usize;
        // Only enumerate small grids.
        prop_assume!(size <= 4096);
        prop_assert_eq!(cs.grid().count(), size);
    }

    #[test]
    fn at_index_roundtrip(cs in space_strategy(), seed in 0u64..1000) {
        let size = cs.size().expect("discrete");
        let idx = seed as u128 % size;
        let cfg = cs.at(idx);
        prop_assert!(cs.validate(&cfg));
        prop_assert_eq!(cs.index_of(&cfg), Some(idx));
    }

    #[test]
    fn samples_are_valid_and_roundtrip(cs in space_strategy(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..10 {
            let cfg = cs.sample(&mut rng);
            prop_assert!(cs.validate(&cfg));
            let idx = cs.index_of(&cfg).expect("indexable");
            prop_assert_eq!(cs.at(idx).key(), cfg.key());
        }
    }

    #[test]
    fn neighbors_stay_valid_and_move_at_most_one_rank(
        cs in space_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = cs.sample(&mut rng);
        for _ in 0..10 {
            let n = cs.neighbor(&cfg, &mut rng);
            prop_assert!(cs.validate(&n));
            let moved: f64 = cs
                .encode(&cfg)
                .iter()
                .zip(cs.encode(&n).iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
            prop_assert!(moved <= 1.0 + 1e-9, "moved {moved} ranks");
        }
    }

    #[test]
    fn encode_is_injective_on_grid(cs in space_strategy()) {
        let size = cs.size().expect("discrete") as usize;
        prop_assume!(size <= 1024);
        let mut seen: Vec<Vec<u64>> = Vec::with_capacity(size);
        for cfg in cs.grid() {
            let enc: Vec<u64> = cs.encode(&cfg).iter().map(|v| v.to_bits()).collect();
            prop_assert!(!seen.contains(&enc), "encoding collision");
            seen.push(enc);
        }
    }

    #[test]
    fn serde_roundtrip_preserves_configs(cs in space_strategy(), seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = cs.sample(&mut rng);
        let json = serde_json::to_string(&cfg).expect("ser");
        let back: configspace::Configuration = serde_json::from_str(&json).expect("de");
        prop_assert_eq!(back.key(), cfg.key());
        prop_assert!(cs.validate(&back));
    }
}
