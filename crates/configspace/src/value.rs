//! Values a hyperparameter can take.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One concrete value of a hyperparameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ParamValue {
    /// Integer value (the paper's tiling factors).
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// String/categorical token.
    Str(String),
}

impl ParamValue {
    /// Integer view (floats truncate; strings yield `None`).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            ParamValue::Float(v) => Some(*v as i64),
            ParamValue::Str(_) => None,
        }
    }

    /// Float view.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Float(v) => Some(*v),
            ParamValue::Str(_) => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(ParamValue::from(3i64).as_int(), Some(3));
        assert_eq!(ParamValue::from(2.5).as_float(), Some(2.5));
        assert_eq!(ParamValue::from(2.5).as_int(), Some(2));
        assert_eq!(ParamValue::from("x").as_str(), Some("x"));
        assert_eq!(ParamValue::from("x").as_int(), None);
    }

    #[test]
    fn serde_untagged() {
        let v: ParamValue = serde_json::from_str("42").expect("int");
        assert_eq!(v, ParamValue::Int(42));
        let v: ParamValue = serde_json::from_str("1.5").expect("float");
        assert_eq!(v, ParamValue::Float(1.5));
        let v: ParamValue = serde_json::from_str("\"hi\"").expect("str");
        assert_eq!(v, ParamValue::Str("hi".into()));
    }
}
