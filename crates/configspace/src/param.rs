//! Hyperparameter kinds.

use crate::value::ParamValue;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One tunable parameter.
///
/// The paper's spaces are built entirely from
/// [`Hyperparameter::ordinal_ints`] (ordered divisor lists); the remaining
/// kinds exist because ytopt/ConfigSpace support them and the generic BO
/// framework (`ytopt-bo`) is not restricted to the paper's kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Hyperparameter {
    /// Ordered discrete values (`CSH.OrdinalHyperparameter`).
    Ordinal {
        /// Parameter name.
        name: String,
        /// Ordered value sequence.
        sequence: Vec<ParamValue>,
    },
    /// Unordered discrete choices (`CSH.CategoricalHyperparameter`).
    Categorical {
        /// Parameter name.
        name: String,
        /// Choice set.
        choices: Vec<ParamValue>,
    },
    /// Uniform integer range, inclusive on both ends.
    UniformInt {
        /// Parameter name.
        name: String,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Uniform float range.
    UniformFloat {
        /// Parameter name.
        name: String,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl Hyperparameter {
    /// Ordinal over integer values — the paper's tiling-factor parameter.
    pub fn ordinal_ints(name: impl Into<String>, seq: &[i64]) -> Hyperparameter {
        assert!(!seq.is_empty(), "ordinal sequence must be non-empty");
        Hyperparameter::Ordinal {
            name: name.into(),
            sequence: seq.iter().map(|&v| ParamValue::Int(v)).collect(),
        }
    }

    /// Categorical over string choices.
    pub fn categorical_strs(name: impl Into<String>, choices: &[&str]) -> Hyperparameter {
        assert!(!choices.is_empty(), "choices must be non-empty");
        Hyperparameter::Categorical {
            name: name.into(),
            choices: choices.iter().map(|&c| ParamValue::from(c)).collect(),
        }
    }

    /// Parameter name.
    pub fn name(&self) -> &str {
        match self {
            Hyperparameter::Ordinal { name, .. }
            | Hyperparameter::Categorical { name, .. }
            | Hyperparameter::UniformInt { name, .. }
            | Hyperparameter::UniformFloat { name, .. } => name,
        }
    }

    /// Number of discrete choices (`None` for continuous parameters).
    pub fn cardinality(&self) -> Option<u128> {
        match self {
            Hyperparameter::Ordinal { sequence, .. } => Some(sequence.len() as u128),
            Hyperparameter::Categorical { choices, .. } => Some(choices.len() as u128),
            Hyperparameter::UniformInt { lo, hi, .. } => Some((hi - lo + 1) as u128),
            Hyperparameter::UniformFloat { .. } => None,
        }
    }

    /// Value at a discrete index.
    ///
    /// # Panics
    /// On continuous parameters or out-of-range indices.
    pub fn value_at(&self, index: usize) -> ParamValue {
        match self {
            Hyperparameter::Ordinal { sequence, .. } => sequence[index].clone(),
            Hyperparameter::Categorical { choices, .. } => choices[index].clone(),
            Hyperparameter::UniformInt { lo, hi, .. } => {
                let v = lo + index as i64;
                assert!(v <= *hi, "index {index} out of range");
                ParamValue::Int(v)
            }
            Hyperparameter::UniformFloat { name, .. } => {
                panic!("`{name}` is continuous; no discrete index")
            }
        }
    }

    /// Discrete index of a value, if present.
    pub fn index_of(&self, value: &ParamValue) -> Option<usize> {
        match self {
            Hyperparameter::Ordinal { sequence, .. } => sequence.iter().position(|v| v == value),
            Hyperparameter::Categorical { choices, .. } => choices.iter().position(|v| v == value),
            Hyperparameter::UniformInt { lo, hi, .. } => {
                let v = value.as_int()?;
                (v >= *lo && v <= *hi).then(|| (v - lo) as usize)
            }
            Hyperparameter::UniformFloat { .. } => None,
        }
    }

    /// Uniformly sample a value.
    pub fn sample(&self, rng: &mut impl Rng) -> ParamValue {
        match self {
            Hyperparameter::Ordinal { sequence, .. } => {
                sequence[rng.gen_range(0..sequence.len())].clone()
            }
            Hyperparameter::Categorical { choices, .. } => {
                choices[rng.gen_range(0..choices.len())].clone()
            }
            Hyperparameter::UniformInt { lo, hi, .. } => ParamValue::Int(rng.gen_range(*lo..=*hi)),
            Hyperparameter::UniformFloat { lo, hi, .. } => {
                ParamValue::Float(rng.gen_range(*lo..*hi))
            }
        }
    }

    /// Default value (first choice / lower bound), used for inactive or
    /// missing parameters.
    pub fn default_value(&self) -> ParamValue {
        match self {
            Hyperparameter::Ordinal { sequence, .. } => sequence[0].clone(),
            Hyperparameter::Categorical { choices, .. } => choices[0].clone(),
            Hyperparameter::UniformInt { lo, .. } => ParamValue::Int(*lo),
            Hyperparameter::UniformFloat { lo, .. } => ParamValue::Float(*lo),
        }
    }

    /// Encode a value to a float for surrogate models.
    ///
    /// Ordinals encode as their *rank* (the BO-relevant metric: the
    /// paper's divisor lists are order-meaningful but wildly non-uniform
    /// in magnitude); categoricals as their index; numeric kinds as the
    /// raw value.
    pub fn encode(&self, value: &ParamValue) -> f64 {
        match self {
            Hyperparameter::Ordinal { .. } | Hyperparameter::Categorical { .. } => {
                self.index_of(value).map(|i| i as f64).unwrap_or(f64::NAN)
            }
            Hyperparameter::UniformInt { .. } => value.as_int().unwrap_or(0) as f64,
            Hyperparameter::UniformFloat { .. } => value.as_float().unwrap_or(f64::NAN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ordinal_roundtrip() {
        let p = Hyperparameter::ordinal_ints("P0", &[1, 2, 4, 8]);
        assert_eq!(p.cardinality(), Some(4));
        assert_eq!(p.value_at(2), ParamValue::Int(4));
        assert_eq!(p.index_of(&ParamValue::Int(8)), Some(3));
        assert_eq!(p.index_of(&ParamValue::Int(3)), None);
        assert_eq!(p.encode(&ParamValue::Int(8)), 3.0);
        assert_eq!(p.default_value(), ParamValue::Int(1));
    }

    #[test]
    fn uniform_int_bounds() {
        let p = Hyperparameter::UniformInt {
            name: "n".into(),
            lo: 5,
            hi: 9,
        };
        assert_eq!(p.cardinality(), Some(5));
        assert_eq!(p.value_at(0), ParamValue::Int(5));
        assert_eq!(p.value_at(4), ParamValue::Int(9));
        assert_eq!(p.index_of(&ParamValue::Int(7)), Some(2));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = p.sample(&mut rng).as_int().expect("int");
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn continuous_has_no_cardinality() {
        let p = Hyperparameter::UniformFloat {
            name: "x".into(),
            lo: 0.0,
            hi: 1.0,
        };
        assert_eq!(p.cardinality(), None);
        let mut rng = SmallRng::seed_from_u64(2);
        let v = p.sample(&mut rng).as_float().expect("float");
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn sampling_covers_choices() {
        let p = Hyperparameter::ordinal_ints("P", &[10, 20, 30]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = p.sample(&mut rng);
            seen[p.index_of(&v).expect("valid")] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
