#![warn(missing_docs)]
//! # configspace — hyperparameter configuration spaces
//!
//! A Rust equivalent of the Python `ConfigSpace` package as used by ytopt
//! (and by this repo's `ytopt-bo` crate). The paper defines each tunable
//! tiling factor as an `OrdinalHyperparameter` over the divisors of the
//! matrix extents; this crate reproduces that surface:
//!
//! * [`Hyperparameter`] — ordinal / categorical / integer / float
//!   parameters,
//! * [`ConfigSpace`] — an ordered set of parameters with sampling,
//!   cardinality ([`ConfigSpace::size`], reproducing the paper's Table 1
//!   numbers), grid enumeration, neighbour generation and numeric
//!   encoding for surrogate models,
//! * [`Configuration`] — one point of the space, serializable for
//!   performance-database records.
//!
//! ```
//! use configspace::{ConfigSpace, Hyperparameter};
//! let mut cs = ConfigSpace::new();
//! cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 4, 8]));
//! cs.add(Hyperparameter::ordinal_ints("P1", &[1, 2, 4]));
//! assert_eq!(cs.size(), Some(12));
//! ```

pub mod config;
pub mod param;
pub mod space;
pub mod value;

pub use config::Configuration;
pub use param::Hyperparameter;
pub use space::{ConfigSpace, GridIter};
pub use value::ParamValue;
