//! Configurations: one concrete assignment of every parameter.

use crate::value::ParamValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A full assignment of values, ordered like the owning
/// [`crate::ConfigSpace`]'s parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    /// Parameter names (aligned with `values`).
    pub names: Vec<String>,
    /// Assigned values.
    pub values: Vec<ParamValue>,
}

impl Configuration {
    /// Build from parallel name/value lists.
    pub fn new(names: Vec<String>, values: Vec<ParamValue>) -> Configuration {
        assert_eq!(names.len(), values.len());
        Configuration { names, values }
    }

    /// Value of a parameter by name.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.values[i])
    }

    /// Integer value of a parameter by name (panics if absent or
    /// non-integer) — the common case for the paper's tile factors.
    pub fn int(&self, name: &str) -> i64 {
        self.get(name)
            .unwrap_or_else(|| panic!("parameter `{name}` not in configuration"))
            .as_int()
            .unwrap_or_else(|| panic!("parameter `{name}` is not an integer"))
    }

    /// All integer values in parameter order — convenient for tile-factor
    /// tuples like the paper's `(P0..P5)`.
    pub fn ints(&self) -> Vec<i64> {
        self.values
            .iter()
            .map(|v| v.as_int().expect("integer configuration"))
            .collect()
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Stable textual key for dedup/visited-sets.
    pub fn key(&self) -> String {
        let mut s = String::new();
        for (n, v) in self.names.iter().zip(&self.values) {
            s.push_str(n);
            s.push('=');
            s.push_str(&v.to_string());
            s.push(';');
        }
        s
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.names.iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Configuration {
        Configuration::new(
            vec!["P0".into(), "P1".into()],
            vec![ParamValue::Int(8), ParamValue::Int(50)],
        )
    }

    #[test]
    fn get_and_int() {
        let c = cfg();
        assert_eq!(c.get("P1"), Some(&ParamValue::Int(50)));
        assert_eq!(c.int("P0"), 8);
        assert_eq!(c.ints(), vec![8, 50]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn key_is_stable_and_distinct() {
        let a = cfg();
        let mut b = cfg();
        assert_eq!(a.key(), b.key());
        b.values[1] = ParamValue::Int(51);
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn serde_roundtrip() {
        let c = cfg();
        let s = serde_json::to_string(&c).expect("ser");
        let back: Configuration = serde_json::from_str(&s).expect("de");
        assert_eq!(c, back);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", cfg()), "{P0: 8, P1: 50}");
    }
}
