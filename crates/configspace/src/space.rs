//! Configuration spaces: ordered parameter sets with sampling,
//! enumeration, encoding and neighbourhoods.

use crate::config::Configuration;
use crate::param::Hyperparameter;
use crate::value::ParamValue;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An ordered set of hyperparameters — the `cs` object of the paper's
/// ConfigSpace snippets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConfigSpace {
    params: Vec<Hyperparameter>,
}

impl ConfigSpace {
    /// Empty space.
    pub fn new() -> ConfigSpace {
        ConfigSpace { params: Vec::new() }
    }

    /// Add one parameter (`cs.add_hyperparameter`).
    ///
    /// # Panics
    /// On duplicate names.
    pub fn add(&mut self, p: Hyperparameter) -> &mut Self {
        assert!(
            self.params.iter().all(|q| q.name() != p.name()),
            "duplicate parameter `{}`",
            p.name()
        );
        self.params.push(p);
        self
    }

    /// Add several parameters (`cs.add_hyperparameters([...])`).
    pub fn add_all(&mut self, ps: impl IntoIterator<Item = Hyperparameter>) -> &mut Self {
        for p in ps {
            self.add(p);
        }
        self
    }

    /// Parameters in insertion order.
    pub fn params(&self) -> &[Hyperparameter] {
        &self.params
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are defined.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Look up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Hyperparameter> {
        self.params.iter().find(|p| p.name() == name)
    }

    /// Total number of configurations (`None` if any parameter is
    /// continuous). Reproduces the paper's Table 1 cardinalities.
    pub fn size(&self) -> Option<u128> {
        self.params
            .iter()
            .map(|p| p.cardinality())
            .try_fold(1u128, |acc, c| c.map(|c| acc * c))
    }

    /// Uniform random configuration.
    pub fn sample(&self, rng: &mut impl Rng) -> Configuration {
        Configuration::new(
            self.params.iter().map(|p| p.name().to_string()).collect(),
            self.params.iter().map(|p| p.sample(rng)).collect(),
        )
    }

    /// `n` independent samples.
    pub fn sample_n(&self, rng: &mut impl Rng, n: usize) -> Vec<Configuration> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Configuration at a mixed-radix flat index over the discrete grid
    /// (row-major: the *last* parameter varies fastest, matching
    /// AutoTVM's `ConfigSpace.get(i)` convention).
    ///
    /// # Panics
    /// If the space is continuous or `index` is out of range.
    pub fn at(&self, index: u128) -> Configuration {
        let size = self
            .size()
            .expect("grid enumeration needs a discrete space");
        assert!(index < size, "index {index} out of range (size {size})");
        let mut rem = index;
        let mut values = vec![ParamValue::Int(0); self.params.len()];
        for (d, p) in self.params.iter().enumerate().rev() {
            let card = p.cardinality().expect("discrete");
            values[d] = p.value_at((rem % card) as usize);
            rem /= card;
        }
        Configuration::new(
            self.params.iter().map(|p| p.name().to_string()).collect(),
            values,
        )
    }

    /// Flat index of a configuration (inverse of [`ConfigSpace::at`]).
    pub fn index_of(&self, config: &Configuration) -> Option<u128> {
        let mut idx = 0u128;
        for p in &self.params {
            let card = p.cardinality()?;
            let v = config.get(p.name())?;
            let i = p.index_of(v)? as u128;
            idx = idx * card + i;
        }
        Some(idx)
    }

    /// Lazy row-major enumeration of the whole grid.
    pub fn grid(&self) -> GridIter<'_> {
        GridIter {
            space: self,
            next: 0,
            size: self
                .size()
                .expect("grid enumeration needs a discrete space"),
        }
    }

    /// Encode a configuration into a numeric feature vector for surrogate
    /// models (ordinal rank / categorical index / raw numeric).
    pub fn encode(&self, config: &Configuration) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| {
                config
                    .get(p.name())
                    .map(|v| p.encode(v))
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }

    /// Random neighbour: pick one parameter, move its ordinal rank by ±1
    /// (or resample a categorical/continuous parameter). The local-move
    /// operator used by GA mutation and simulated-annealing proposals.
    pub fn neighbor(&self, config: &Configuration, rng: &mut impl Rng) -> Configuration {
        assert!(!self.params.is_empty(), "empty space has no neighbours");
        let mut out = config.clone();
        let d = rng.gen_range(0..self.params.len());
        let p = &self.params[d];
        let new_val = match p {
            Hyperparameter::Ordinal { sequence, .. } => {
                let cur = p
                    .index_of(&out.values[d])
                    .unwrap_or_else(|| rng.gen_range(0..sequence.len()));
                let cand = if cur == 0 {
                    1.min(sequence.len() - 1)
                } else if cur == sequence.len() - 1 || rng.gen_bool(0.5) {
                    cur - 1
                } else {
                    cur + 1
                };
                sequence[cand].clone()
            }
            other => other.sample(rng),
        };
        out.values[d] = new_val;
        out
    }

    /// The configuration with every parameter at its default.
    pub fn default_configuration(&self) -> Configuration {
        Configuration::new(
            self.params.iter().map(|p| p.name().to_string()).collect(),
            self.params.iter().map(|p| p.default_value()).collect(),
        )
    }

    /// Check that a configuration assigns a legal value to every
    /// parameter of this space.
    pub fn validate(&self, config: &Configuration) -> bool {
        config.len() == self.params.len()
            && self.params.iter().all(|p| {
                config
                    .get(p.name())
                    .map(|v| match p {
                        Hyperparameter::UniformFloat { lo, hi, .. } => {
                            v.as_float().map(|x| x >= *lo && x <= *hi).unwrap_or(false)
                        }
                        _ => p.index_of(v).is_some(),
                    })
                    .unwrap_or(false)
            })
    }
}

/// Lazy iterator over all configurations of a discrete space, in
/// row-major (grid) order.
pub struct GridIter<'a> {
    space: &'a ConfigSpace,
    next: u128,
    size: u128,
}

impl<'a> Iterator for GridIter<'a> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        if self.next >= self.size {
            return None;
        }
        let c = self.space.at(self.next);
        self.next += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.size - self.next).min(usize::MAX as u128) as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 4]));
        cs.add(Hyperparameter::ordinal_ints("P1", &[10, 20]));
        cs
    }

    #[test]
    fn size_multiplies() {
        assert_eq!(space().size(), Some(6));
        let mut cs = space();
        cs.add(Hyperparameter::UniformFloat {
            name: "x".into(),
            lo: 0.0,
            hi: 1.0,
        });
        assert_eq!(cs.size(), None);
    }

    #[test]
    fn at_and_index_roundtrip() {
        let cs = space();
        for i in 0..6u128 {
            let c = cs.at(i);
            assert_eq!(cs.index_of(&c), Some(i));
        }
        // Row-major: last param fastest.
        assert_eq!(cs.at(0).ints(), vec![1, 10]);
        assert_eq!(cs.at(1).ints(), vec![1, 20]);
        assert_eq!(cs.at(2).ints(), vec![2, 10]);
        assert_eq!(cs.at(5).ints(), vec![4, 20]);
    }

    #[test]
    fn grid_enumerates_all_distinct() {
        let cs = space();
        let all: Vec<_> = cs.grid().collect();
        assert_eq!(all.len(), 6);
        let mut keys: Vec<_> = all.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn sample_is_valid() {
        let cs = space();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let c = cs.sample(&mut rng);
            assert!(cs.validate(&c));
        }
    }

    #[test]
    fn encode_uses_ordinal_rank() {
        let cs = space();
        let c = cs.at(5); // P0=4 (rank 2), P1=20 (rank 1)
        assert_eq!(cs.encode(&c), vec![2.0, 1.0]);
    }

    #[test]
    fn neighbor_moves_one_param_one_rank() {
        let cs = space();
        let mut rng = SmallRng::seed_from_u64(7);
        let c = cs.at(2); // P0=2 (rank 1), P1=10 (rank 0)
        for _ in 0..40 {
            let n = cs.neighbor(&c, &mut rng);
            assert!(cs.validate(&n));
            let d: Vec<i64> = cs
                .encode(&c)
                .iter()
                .zip(cs.encode(&n).iter())
                .map(|(a, b)| (a - b).abs() as i64)
                .collect();
            let moved: i64 = d.iter().sum();
            assert!(moved <= 1, "neighbor moved more than one rank: {d:?}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_rejected() {
        let mut cs = space();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1]));
    }

    #[test]
    fn default_configuration_valid() {
        let cs = space();
        let d = cs.default_configuration();
        assert!(cs.validate(&d));
        assert_eq!(d.ints(), vec![1, 10]);
    }

    #[test]
    fn validate_rejects_foreign_values() {
        let cs = space();
        let mut c = cs.at(0);
        c.values[0] = ParamValue::Int(3); // not in [1,2,4]
        assert!(!cs.validate(&c));
    }
}
