//! Property tests on the surrogate models' structural guarantees.

use proptest::prelude::*;
use surrogate::forest::RandomForest;
use surrogate::gbt::GradientBoosting;
use surrogate::metrics::rmse;
use surrogate::tree::RegressionTree;
use surrogate::Regressor;

fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec(
        (prop::array::uniform3(-10.0f64..10.0), -100.0f64..100.0),
        5..40,
    )
    .prop_map(|rows| rows.into_iter().map(|(x, y)| (x.to_vec(), y)).unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A tree's prediction is always a mean of training targets, hence
    /// bounded by their range.
    #[test]
    fn tree_predictions_bounded_by_targets(
        (x, y) in dataset_strategy(),
        probe in prop::array::uniform3(-20.0f64..20.0),
    ) {
        let mut t = RegressionTree::new(8);
        t.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict_one(&probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// So is a forest's (a mean of tree means), and its std is
    /// non-negative and bounded by the target half-range.
    #[test]
    fn forest_mean_and_std_bounded(
        (x, y) in dataset_strategy(),
        probe in prop::array::uniform3(-20.0f64..20.0),
    ) {
        let mut rf = RandomForest::new(8).with_seed(1);
        rf.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (mean, std) = rf.predict_with_std(&probe);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert!(std >= 0.0);
        prop_assert!(std <= (hi - lo) / 2.0 + 1e-9);
    }

    /// A deep unconstrained tree interpolates distinct training points.
    #[test]
    fn deep_tree_interpolates((x, y) in dataset_strategy()) {
        // Require distinct feature rows (ties make targets ambiguous).
        let mut keys: Vec<String> = x.iter().map(|r| format!("{r:?}")).collect();
        keys.sort();
        keys.dedup();
        prop_assume!(keys.len() == x.len());
        let mut t = RegressionTree::new(64);
        t.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            prop_assert!((t.predict_one(xi) - yi).abs() < 1e-9);
        }
    }

    /// More boosting rounds never increase training RMSE (squared-loss
    /// boosting with full subsample is monotone on the training set).
    #[test]
    fn boosting_monotone_on_training((x, y) in dataset_strategy()) {
        let mut weak = GradientBoosting::new(2).with_seed(3);
        weak.fit(&x, &y);
        let mut strong = GradientBoosting::new(30).with_seed(3);
        strong.fit(&x, &y);
        let e_weak = rmse(&weak.predict(&x), &y);
        let e_strong = rmse(&strong.predict(&x), &y);
        prop_assert!(e_strong <= e_weak + 1e-9, "weak {e_weak} < strong {e_strong}");
    }

    /// Fitting is permutation-invariant for trees without subsampling
    /// (split search scans all rows).
    #[test]
    fn tree_fit_is_permutation_invariant((x, y) in dataset_strategy(), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<usize> = (0..x.len()).collect();
        order.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        let (px, py): (Vec<Vec<f64>>, Vec<f64>) =
            order.iter().map(|&i| (x[i].clone(), y[i])).unzip();

        let mut a = RegressionTree::new(6);
        a.fit(&x, &y);
        let mut b = RegressionTree::new(6);
        b.fit(&px, &py);
        for probe in x.iter().take(10) {
            prop_assert!((a.predict_one(probe) - b.predict_one(probe)).abs() < 1e-9);
        }
    }
}
