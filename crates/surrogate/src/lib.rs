#![warn(missing_docs)]
//! # surrogate — from-scratch regression models for autotuning
//!
//! The two learned components of the paper's tuner line-up, implemented
//! natively:
//!
//! * [`forest::RandomForest`] — bagged CART regression trees with
//!   ensemble-variance uncertainty; this is ytopt's surrogate (scikit-learn
//!   `RandomForestRegressor`) and feeds the LCB acquisition function in
//!   `ytopt-bo`.
//! * [`gbt::GradientBoosting`] — gradient-boosted regression trees with
//!   shrinkage and subsampling; this is the XGBoost cost model behind
//!   AutoTVM's `XGBTuner` (squared loss is all the tuner needs: it ranks
//!   candidates).
//!
//! Both build on the same [`tree::RegressionTree`] (variance-reduction
//! CART splitter). [`metrics`] provides the evaluation helpers used by
//! tests and the ablation benches.
//!
//! ```
//! use surrogate::forest::RandomForest;
//! use surrogate::Regressor;
//! let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
//! let y: Vec<f64> = (0..40).map(|i| (i * i) as f64).collect();
//! let mut rf = RandomForest::new(20).with_seed(7);
//! rf.fit(&x, &y);
//! let (mean, std) = rf.predict_with_std(&[20.0]);
//! assert!((mean - 400.0).abs() < 150.0);
//! assert!(std >= 0.0);
//! ```

pub mod forest;
pub mod gbt;
pub mod metrics;
pub mod tree;

/// Common interface for regressors used as tuner surrogates.
pub trait Regressor {
    /// Fit on rows `x` (feature vectors) and targets `y`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);
    /// Predict a single row.
    fn predict_one(&self, row: &[f64]) -> f64;
    /// Predict many rows.
    fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }
}
