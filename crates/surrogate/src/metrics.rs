//! Regression-quality metrics.

/// Root-mean-squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let mse = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination (`1 - SS_res / SS_tot`; `0.0` when the
/// target is constant and predictions match it, negative when worse than
/// the mean predictor).
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Average ranks, with ties sharing their mean rank.
fn ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut r = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[order[j + 1]] == v[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Spearman rank correlation — the metric that matters for tuners, which
/// only need predicted *ordering* of candidates to be right.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(a.len() >= 2, "need at least two points");
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        let (x, y) = (ra[i] - mean, rb[i] - mean);
        num += x * y;
        da += x * x;
        db += y * y;
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_mae_basic() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 2.0, 5.0];
        assert!((rmse(&p, &t) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&p, &t) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r2(&mean_pred, &t).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_invariance() {
        let a: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|x| x.exp()).collect(); // monotone map
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let flat = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(spearman(&flat, &b), 0.0);
    }
}
