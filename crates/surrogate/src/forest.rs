//! Random-forest regression with ensemble-variance uncertainty.

use crate::tree::RegressionTree;
use crate::Regressor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Bagged ensemble of [`RegressionTree`]s — the ytopt surrogate.
///
/// `predict_with_std` exposes the per-tree spread, which the LCB
/// acquisition function in `ytopt-bo` uses as its uncertainty estimate
/// (exactly how ytopt uses scikit-learn's forest).
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth cap per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features per split (`None` = `ceil(n_features / 3)`, scikit-learn's
    /// regression default).
    pub max_features: Option<usize>,
    /// Bootstrap resampling of rows per tree.
    pub bootstrap: bool,
    /// Base RNG seed.
    pub seed: u64,
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Forest with `n_trees` trees and library defaults
    /// (depth 16, leaf 1, bootstrap on).
    pub fn new(n_trees: usize) -> RandomForest {
        RandomForest {
            n_trees: n_trees.max(1),
            max_depth: 16,
            min_samples_leaf: 1,
            max_features: None,
            bootstrap: true,
            seed: 0,
            trees: Vec::new(),
        }
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builder: depth cap.
    pub fn with_max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder: minimum samples per leaf.
    pub fn with_min_samples_leaf(mut self, m: usize) -> Self {
        self.min_samples_leaf = m.max(1);
        self
    }

    /// Builder: features per split.
    pub fn with_max_features(mut self, m: usize) -> Self {
        self.max_features = Some(m.max(1));
        self
    }

    /// Builder: toggle bootstrap resampling.
    pub fn with_bootstrap(mut self, b: bool) -> Self {
        self.bootstrap = b;
        self
    }

    /// True once fitted.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Predict mean and standard deviation across trees.
    pub fn predict_with_std(&self, row: &[f64]) -> (f64, f64) {
        assert!(self.is_fitted(), "predict before fit");
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict_one(row)).collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    /// Batch version of [`RandomForest::predict_with_std`]: rows are
    /// scored in parallel chunks on the rayon pool. Per-row arithmetic is
    /// untouched, so results are bit-for-bit identical to scoring each
    /// row with [`RandomForest::predict_with_std`] sequentially.
    pub fn predict_with_std_batch(&self, rows: &[Vec<f64>]) -> Vec<(f64, f64)> {
        // Chunked so small batches (and the tail) don't pay per-row task
        // overhead; order is preserved by `par_chunks`' collect.
        const CHUNK: usize = 64;
        if rows.len() <= CHUNK {
            return rows.iter().map(|r| self.predict_with_std(r)).collect();
        }
        rows.par_chunks(CHUNK)
            .flat_map_iter(|chunk| chunk.iter().map(|r| self.predict_with_std(r)))
            .collect()
    }

    /// Fit one tree of the ensemble: bootstrap draw + tree fit, seeded
    /// only by `(forest seed, tree index)` so the result is independent
    /// of whether trees are fitted sequentially or in parallel.
    fn fit_one_tree(
        &self,
        t: usize,
        x: &[Vec<f64>],
        y: &[f64],
        max_features: usize,
    ) -> RegressionTree {
        let n = x.len();
        let tree_seed = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(t as u64 + 1);
        let mut rng = SmallRng::seed_from_u64(tree_seed);
        let (bx, by): (Vec<Vec<f64>>, Vec<f64>) = if self.bootstrap {
            (0..n)
                .map(|_| {
                    let i = rng.gen_range(0..n);
                    (x[i].clone(), y[i])
                })
                .unzip()
        } else {
            (x.to_vec(), y.to_vec())
        };
        let mut tree = RegressionTree::new(self.max_depth)
            .with_min_samples_leaf(self.min_samples_leaf)
            .with_max_features(max_features)
            .with_seed(tree_seed ^ 0xABCD);
        tree.fit(&bx, &by);
        tree
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let n_feat = x[0].len();
        let max_features = self
            .max_features
            .unwrap_or_else(|| n_feat.div_ceil(3))
            .min(n_feat);
        // Trees are independent: fit in parallel (rayon), deterministic
        // via per-tree seeds.
        let trees: Vec<RegressionTree> = (0..self.n_trees)
            .into_par_iter()
            .map(|t| self.fit_one_tree(t, x, y, max_features))
            .collect();
        self.trees = trees;
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        self.predict_with_std(row).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn quadratic(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        (x, y)
    }

    #[test]
    fn fits_quadratic_reasonably() {
        let (x, y) = quadratic(100);
        let mut rf = RandomForest::new(30).with_seed(3);
        rf.fit(&x, &y);
        let preds = rf.predict(&x);
        assert!(rmse(&preds, &y) < 0.05, "rmse={}", rmse(&preds, &y));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = quadratic(50);
        let mut a = RandomForest::new(10).with_seed(11);
        let mut b = RandomForest::new(10).with_seed(11);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
        let mut c = RandomForest::new(10).with_seed(12);
        c.fit(&x, &y);
        assert_ne!(a.predict(&x), c.predict(&x));
    }

    #[test]
    fn uncertainty_grows_off_distribution() {
        let (x, y) = quadratic(60);
        let mut rf = RandomForest::new(40).with_seed(5);
        rf.fit(&x, &y);
        // In-sample uncertainty near a dense region vs far extrapolation.
        let (_, s_in) = rf.predict_with_std(&[0.5]);
        // All trees extrapolate with their last leaf: spread may collapse,
        // so just assert both are finite and non-negative.
        let (_, s_out) = rf.predict_with_std(&[5.0]);
        assert!(s_in >= 0.0 && s_out >= 0.0);
        assert!(s_in.is_finite() && s_out.is_finite());
    }

    #[test]
    fn no_bootstrap_full_depth_interpolates() {
        let (x, y) = quadratic(30);
        let mut rf = RandomForest::new(5)
            .with_bootstrap(false)
            .with_max_features(1)
            .with_seed(2);
        rf.fit(&x, &y);
        // Without bootstrap and with all features, trees see all rows:
        // training error should be ~0.
        let preds = rf.predict(&x);
        assert!(rmse(&preds, &y) < 1e-9);
        // And the ensemble agrees with itself -> zero std.
        let (_, s) = rf.predict_with_std(&x[10]);
        assert!(s < 1e-12);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let rf = RandomForest::new(3);
        let _ = rf.predict_with_std(&[0.0]);
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        // The parallel fit must be indistinguishable from fitting the
        // trees one by one in index order with the same per-tree seeds.
        let (x, y) = quadratic(80);
        let mut rf = RandomForest::new(24).with_seed(9);
        rf.fit(&x, &y);

        let mut serial = RandomForest::new(24).with_seed(9);
        let n_feat = x[0].len();
        let max_features = serial
            .max_features
            .unwrap_or_else(|| n_feat.div_ceil(3))
            .min(n_feat);
        let trees: Vec<RegressionTree> = (0..serial.n_trees)
            .map(|t| serial.fit_one_tree(t, &x, &y, max_features))
            .collect();
        serial.trees = trees;

        for row in &x {
            assert_eq!(rf.predict_with_std(row), serial.predict_with_std(row));
        }
    }

    #[test]
    fn batch_predict_is_bit_identical_to_per_row() {
        let (x, y) = quadratic(70);
        let mut rf = RandomForest::new(16).with_seed(21);
        rf.fit(&x, &y);
        // Enough rows to cross the parallel-chunk threshold, with a
        // ragged tail.
        let rows: Vec<Vec<f64>> = (0..333).map(|i| vec![i as f64 / 100.0]).collect();
        let batch = rf.predict_with_std_batch(&rows);
        let serial: Vec<(f64, f64)> = rows.iter().map(|r| rf.predict_with_std(r)).collect();
        assert_eq!(batch, serial);
        // The small-batch (sequential) path agrees too.
        assert_eq!(rf.predict_with_std_batch(&rows[..5]), serial[..5].to_vec());
    }
}
