//! CART regression trees (variance-reduction splitting).

use crate::Regressor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One node of a fitted tree, stored in an arena.
#[derive(Debug, Clone)]
enum Node {
    /// Internal split: rows with `x[feature] <= threshold` go left.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf prediction.
    Leaf { value: f64 },
}

/// A CART regression tree.
///
/// Splits greedily minimize the summed squared error of the two children;
/// `max_features` (feature subsampling per split) supplies the
/// decorrelation random forests need.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required in each child of a split.
    pub min_samples_leaf: usize,
    /// Features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Tree with the given depth cap and default leaf size 1.
    pub fn new(max_depth: usize) -> RegressionTree {
        RegressionTree {
            max_depth,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
            nodes: Vec::new(),
        }
    }

    /// Builder: minimum samples per leaf.
    pub fn with_min_samples_leaf(mut self, m: usize) -> Self {
        self.min_samples_leaf = m.max(1);
        self
    }

    /// Builder: features per split.
    pub fn with_max_features(mut self, m: usize) -> Self {
        self.max_features = Some(m.max(1));
        self
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Number of nodes of the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mean(y: &[f64], idx: &[usize]) -> f64 {
        idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
    }

    /// Best (feature, threshold, sse) split of `idx`, or `None` when no
    /// split satisfies the leaf-size constraint or reduces error.
    fn best_split(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        features: &[usize],
    ) -> Option<(usize, f64, f64)> {
        let n = idx.len();
        let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let mut best: Option<(usize, f64, f64)> = None;

        let mut order: Vec<usize> = idx.to_vec();
        for &f in features {
            order.sort_by(|&a, &b| {
                x[a][f]
                    .partial_cmp(&x[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let total_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
            for pos in 0..n - 1 {
                let i = order[pos];
                left_sum += y[i];
                left_sq += y[i] * y[i];
                let nl = pos + 1;
                let nr = n - nl;
                if nl < self.min_samples_leaf || nr < self.min_samples_leaf {
                    continue;
                }
                // Can't split between equal feature values.
                if x[order[pos]][f] == x[order[pos + 1]][f] {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse_l = left_sq - left_sum * left_sum / nl as f64;
                let sse_r = right_sq - right_sum * right_sum / nr as f64;
                let sse = sse_l + sse_r;
                if best.map(|(_, _, b)| sse < b).unwrap_or(true) {
                    let thr = 0.5 * (x[order[pos]][f] + x[order[pos + 1]][f]);
                    best = Some((f, thr, sse));
                }
            }
        }
        best
    }

    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut SmallRng,
    ) -> usize {
        let leaf_value = Self::mean(y, &idx);
        let homogeneous = idx.iter().all(|&i| y[i] == y[idx[0]]);
        if depth >= self.max_depth || idx.len() < 2 * self.min_samples_leaf || homogeneous {
            self.nodes.push(Node::Leaf { value: leaf_value });
            return self.nodes.len() - 1;
        }

        let n_feat = x[0].len();
        let mut all_feats: Vec<usize> = (0..n_feat).collect();
        let feats: Vec<usize> = match self.max_features {
            Some(m) if m < n_feat => {
                all_feats.shuffle(rng);
                all_feats.truncate(m);
                all_feats
            }
            _ => all_feats,
        };

        match self.best_split(x, y, &idx, &feats) {
            Some((feature, threshold, _)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.into_iter().partition(|&i| x[i][feature] <= threshold);
                // Reserve a slot for this split node, fill after children.
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: leaf_value });
                let left = self.build(x, y, li, depth + 1, rng);
                let right = self.build(x, y, ri, depth + 1, rng);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
            None => {
                self.nodes.push(Node::Leaf { value: leaf_value });
                self.nodes.len() - 1
            }
        }
    }
}

impl Regressor for RegressionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        self.nodes.clear();
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let root = self.build(x, y, idx, 0, &mut rng);
        debug_assert_eq!(root, 0);
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "predict before fit");
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 if x0 > 5 else 0
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i > 5 { 1.0 } else { 0.0 }).collect();
        (x, y)
    }

    #[test]
    fn learns_step_function_exactly() {
        let (x, y) = step_data();
        let mut t = RegressionTree::new(4);
        t.fit(&x, &y);
        assert_eq!(t.predict_one(&[2.0]), 0.0);
        assert_eq!(t.predict_one(&[9.0]), 1.0);
    }

    #[test]
    fn depth_zero_predicts_mean() {
        let (x, y) = step_data();
        let mut t = RegressionTree::new(0);
        t.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict_one(&[3.0]) - mean).abs() < 1e-12);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = step_data();
        let mut t = RegressionTree::new(10).with_min_samples_leaf(10);
        t.fit(&x, &y);
        // With leaves >= 10 of 20 samples only one split is possible.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn two_feature_interaction() {
        // y = x0 XOR x1 on a 2D grid — needs depth 2.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..5 {
                    x.push(vec![a as f64, b as f64]);
                    y.push(((a ^ b) as f64).abs());
                }
            }
        }
        let mut t = RegressionTree::new(3);
        t.fit(&x, &y);
        assert_eq!(t.predict_one(&[0.0, 0.0]), 0.0);
        assert_eq!(t.predict_one(&[1.0, 0.0]), 1.0);
        assert_eq!(t.predict_one(&[0.0, 1.0]), 1.0);
        assert_eq!(t.predict_one(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn constant_target_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![3.5; 10];
        let mut t = RegressionTree::new(8);
        t.fit(&x, &y);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_one(&[100.0]), 3.5);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let mut t = RegressionTree::new(2);
        t.fit(&[], &[]);
    }

    #[test]
    fn feature_subsampling_is_deterministic() {
        let (x, y) = step_data();
        let mut a = RegressionTree::new(4).with_max_features(1).with_seed(9);
        let mut b = RegressionTree::new(4).with_max_features(1).with_seed(9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for i in 0..20 {
            assert_eq!(a.predict_one(&[i as f64]), b.predict_one(&[i as f64]));
        }
    }
}
