//! Gradient-boosted regression trees (the XGBoost stand-in behind
//! AutoTVM's `XGBTuner`).

use crate::tree::RegressionTree;
use crate::Regressor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Gradient boosting with squared loss, shrinkage and row subsampling.
///
/// Squared loss means each round fits a CART tree to the current
/// residuals — sufficient for the tuner's purpose (ranking candidate
/// configurations by predicted runtime).
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    /// Boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Depth cap per tree.
    pub max_depth: usize,
    /// Fraction of rows sampled per round (1.0 = all).
    pub subsample: f64,
    /// RNG seed.
    pub seed: u64,
    base: f64,
    trees: Vec<RegressionTree>,
}

impl GradientBoosting {
    /// Booster with `n_rounds` rounds, learning rate 0.3 and depth 6 —
    /// XGBoost's classic defaults.
    pub fn new(n_rounds: usize) -> GradientBoosting {
        GradientBoosting {
            n_rounds: n_rounds.max(1),
            learning_rate: 0.3,
            max_depth: 6,
            subsample: 1.0,
            seed: 0,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Builder: learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        assert!(lr > 0.0 && lr <= 1.0, "learning rate must be in (0, 1]");
        self.learning_rate = lr;
        self
    }

    /// Builder: tree depth.
    pub fn with_max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder: row subsample fraction.
    pub fn with_subsample(mut self, s: f64) -> Self {
        assert!(s > 0.0 && s <= 1.0, "subsample must be in (0, 1]");
        self.subsample = s;
        self
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// True once fitted.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty() || self.base != 0.0
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        let n = x.len();
        self.trees.clear();
        self.base = y.iter().sum::<f64>() / n as f64;
        let mut pred: Vec<f64> = vec![self.base; n];
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let m = ((n as f64 * self.subsample).round() as usize).clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();

        for round in 0..self.n_rounds {
            let rows: Vec<usize> = if m < n {
                order.shuffle(&mut rng);
                order[..m].to_vec()
            } else {
                order.clone()
            };
            let rx: Vec<Vec<f64>> = rows.iter().map(|&i| x[i].clone()).collect();
            let ry: Vec<f64> = rows.iter().map(|&i| y[i] - pred[i]).collect();
            let mut tree =
                RegressionTree::new(self.max_depth).with_seed(self.seed.wrapping_add(round as u64));
            tree.fit(&rx, &ry);
            for i in 0..n {
                pred[i] += self.learning_rate * tree.predict_one(&x[i]);
            }
            self.trees.push(tree);
        }
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        assert!(self.is_fitted(), "predict before fit");
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{rmse, spearman};

    fn friedmanish(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Deterministic nonlinear 3-feature target.
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i % 10) as f64 / 10.0;
                let b = ((i / 10) % 10) as f64 / 10.0;
                let c = ((i / 100) % 10) as f64 / 10.0;
                vec![a, b, c]
            })
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| 10.0 * (std::f64::consts::PI * r[0]).sin() + 5.0 * r[1] * r[1] + 2.0 * r[2])
            .collect();
        (x, y)
    }

    #[test]
    fn boosting_reduces_error_with_rounds() {
        let (x, y) = friedmanish(300);
        let mut weak = GradientBoosting::new(3).with_seed(1);
        weak.fit(&x, &y);
        let mut strong = GradientBoosting::new(60).with_seed(1);
        strong.fit(&x, &y);
        let e_weak = rmse(&weak.predict(&x), &y);
        let e_strong = rmse(&strong.predict(&x), &y);
        assert!(e_strong < e_weak * 0.5, "weak={e_weak}, strong={e_strong}");
    }

    #[test]
    fn ranks_targets_well() {
        let (x, y) = friedmanish(300);
        let mut gbt = GradientBoosting::new(40).with_seed(4);
        gbt.fit(&x, &y);
        let rho = spearman(&gbt.predict(&x), &y);
        assert!(rho > 0.95, "spearman={rho}");
    }

    #[test]
    fn subsample_still_learns() {
        let (x, y) = friedmanish(300);
        let mut gbt = GradientBoosting::new(60).with_subsample(0.5).with_seed(2);
        gbt.fit(&x, &y);
        let rho = spearman(&gbt.predict(&x), &y);
        assert!(rho > 0.9, "spearman={rho}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = friedmanish(120);
        let mut a = GradientBoosting::new(15).with_subsample(0.7).with_seed(9);
        let mut b = GradientBoosting::new(15).with_subsample(0.7).with_seed(9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn constant_target_predicts_base() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 10];
        let mut gbt = GradientBoosting::new(5);
        gbt.fit(&x, &y);
        assert!((gbt.predict_one(&[3.0]) - 7.0).abs() < 1e-9);
        assert_eq!(gbt.n_trees(), 5);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn invalid_lr_rejected() {
        let _ = GradientBoosting::new(5).with_learning_rate(0.0);
    }
}
