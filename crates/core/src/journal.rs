//! Crash-consistent trial journal: an append-only JSONL log, fsync'd per
//! trial, shared by the AutoTVM driver, the BO optimizer, and the tuning
//! service.
//!
//! Every completed evaluation is serialized as one JSON line and synced
//! to disk before the next proposal is made, so a crash (or `kill -9`)
//! loses at most the trial in flight. [`TrialJournal::load`] tolerates a
//! torn final line — the signature of a crash mid-append — by dropping
//! it; corruption anywhere *before* the tail is a hard error, because it
//! means the file was edited, not interrupted.
//!
//! Resume works by *replaying the tape*: the driver/optimizer runs its
//! normal propose loop, and as long as journal records remain, each
//! proposal is satisfied from the journal instead of being evaluated
//! (after verifying the proposed configuration matches the recorded
//! one). Because every tuner is a deterministic function of (seed,
//! history), the continued run's remaining trajectory is identical to an
//! uninterrupted run's.
//!
//! ## Rotation and compaction
//!
//! Long-lived service sessions append indefinitely; a single journal file
//! would grow without bound and make the torn-tail scan ever more
//! expensive. A journal opened with a [`RotationPolicy`] *rotates*: once
//! the active file holds `max_records_per_segment` records it is renamed
//! to `<path>.seg<N>` (higher `N` = newer) and a fresh active file is
//! started. Loading reads the archived segments in order, then the active
//! file, and replay sees one seamless tape — rotation is invisible to
//! resume. A torn tail is only ever possible in the active segment
//! (archives are rotated whole, after their last record was fsync'd); a
//! malformed line inside an archive is a hard error.
//!
//! When the archive count exceeds [`RotationPolicy::compact_after_segments`]
//! the archives are *compacted*: merged into the oldest segment via an
//! atomic temp-file rename, then the now-redundant segment files are
//! removed. A crash between the rename and the removals leaves duplicate
//! records on disk; loading repairs this deterministically by skipping
//! records whose index was already seen (indices are strictly increasing
//! within a run), and [`TrialJournal::open_resume_rotating`] deletes the
//! fully-redundant files it finds.

use crate::fault::MeasureError;
use configspace::Configuration;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One journaled trial (superset of the information in
/// `autotvm::record::TuningRecord`: failures keep their error class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// 0-based evaluation index within the run.
    pub index: usize,
    /// The evaluated configuration.
    pub config: Configuration,
    /// Measured runtime, seconds (`None` on failure).
    pub runtime_s: Option<f64>,
    /// Failure class, if the trial failed.
    #[serde(default)]
    pub error: Option<MeasureError>,
    /// Process time this evaluation consumed (including harness retries
    /// and timeout charges).
    pub eval_process_s: f64,
    /// Cumulative process time when the trial finished.
    pub elapsed_s: f64,
    /// Fingerprint of the compile/optimization pipeline that produced
    /// this measurement (`None` for compiler-independent evaluators, and
    /// for journals written before the field existed). Resume refuses to
    /// replay a record whose fingerprint differs from the current one.
    #[serde(default)]
    pub pipeline: Option<String>,
}

/// Size/compaction policy for a rotating journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationPolicy {
    /// Records per segment before the active file is rolled into an
    /// archive (must be ≥ 1).
    pub max_records_per_segment: usize,
    /// Once more than this many archived segments exist they are merged
    /// into one (0 disables compaction).
    pub compact_after_segments: usize,
}

impl Default for RotationPolicy {
    fn default() -> Self {
        RotationPolicy {
            max_records_per_segment: 256,
            compact_after_segments: 4,
        }
    }
}

/// An open, append-only journal file (optionally rotating).
pub struct TrialJournal {
    file: File,
    path: PathBuf,
    written: usize,
    rotation: Option<RotationPolicy>,
    /// Records currently in the active segment file.
    active_records: usize,
}

/// Best-effort fsync of `path`'s parent directory, making renames and
/// file creations durable (POSIX requires the directory sync; platforms
/// that cannot open a directory just skip it).
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Archived segment paths for `path`, sorted oldest (lowest `N`) first.
fn segment_paths(path: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let parent = match path.parent() {
        Some(p) if p.as_os_str().is_empty() => PathBuf::from("."),
        Some(p) => p.to_path_buf(),
        None => PathBuf::from("."),
    };
    let base = match path.file_name() {
        Some(name) => name.to_string_lossy().to_string(),
        None => return Ok(Vec::new()),
    };
    let prefix = format!("{base}.seg");
    let mut out = Vec::new();
    if !parent.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(&parent)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().to_string();
        if let Some(n) = name.strip_prefix(&prefix) {
            if let Ok(n) = n.parse::<u64>() {
                out.push((n, entry.path()));
            }
        }
    }
    out.sort_by_key(|(n, _)| *n);
    Ok(out)
}

impl TrialJournal {
    /// Start a fresh journal at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<TrialJournal> {
        TrialJournal::create_inner(path.as_ref(), None)
    }

    /// Start a fresh *rotating* journal at `path`: any existing active
    /// file, archived segments, and stale compaction temp are removed.
    pub fn create_rotating(
        path: impl AsRef<Path>,
        policy: RotationPolicy,
    ) -> std::io::Result<TrialJournal> {
        assert!(
            policy.max_records_per_segment >= 1,
            "rotation needs at least one record per segment"
        );
        let path = path.as_ref();
        for (_, seg) in segment_paths(path)? {
            std::fs::remove_file(seg)?;
        }
        let _ = std::fs::remove_file(compact_tmp(path));
        TrialJournal::create_inner(path, Some(policy))
    }

    fn create_inner(
        path: &Path,
        rotation: Option<RotationPolicy>,
    ) -> std::io::Result<TrialJournal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(TrialJournal {
            file,
            path: path.to_path_buf(),
            written: 0,
            rotation,
            active_records: 0,
        })
    }

    /// Open `path` for appending, first loading every intact record
    /// already present (empty when the file does not exist yet).
    ///
    /// An intact journal is opened in append mode untouched. Only when a
    /// torn tail line (crash mid-append) is detected is the intact prefix
    /// rewritten — to a temp file that is atomically renamed over the
    /// original, so already-fsync'd trials can never be lost to a crash
    /// during the repair itself.
    pub fn open_resume(
        path: impl AsRef<Path>,
    ) -> std::io::Result<(TrialJournal, Vec<TrialRecord>)> {
        TrialJournal::open_resume_inner(path.as_ref(), None)
    }

    /// [`TrialJournal::open_resume`] for a rotating journal: loads the
    /// archived segments (oldest first) followed by the active file,
    /// repairs a torn active tail, finishes any compaction that was
    /// interrupted mid-cleanup, and appends to the active segment.
    pub fn open_resume_rotating(
        path: impl AsRef<Path>,
        policy: RotationPolicy,
    ) -> std::io::Result<(TrialJournal, Vec<TrialRecord>)> {
        assert!(
            policy.max_records_per_segment >= 1,
            "rotation needs at least one record per segment"
        );
        TrialJournal::open_resume_inner(path.as_ref(), Some(policy))
    }

    fn open_resume_inner(
        path: &Path,
        rotation: Option<RotationPolicy>,
    ) -> std::io::Result<(TrialJournal, Vec<TrialRecord>)> {
        // A stale compaction temp means the crash happened before the
        // atomic rename: the archives are untouched, drop the temp.
        let _ = std::fs::remove_file(compact_tmp(path));
        let mut existing: Vec<TrialRecord> = Vec::new();
        for (_, seg) in segment_paths(path)? {
            let (records, torn) = TrialJournal::load_file_with_tail(&seg)?;
            if torn {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "archived journal segment {seg:?} has a torn tail; segments are rotated \
                         whole, so this file was edited or truncated externally"
                    ),
                ));
            }
            let before = existing.len();
            append_deduped(&mut existing, records);
            if existing.len() == before && before > 0 {
                // Every record was already seen: this segment is a
                // leftover of an interrupted compaction. Finish the
                // cleanup it never got to.
                std::fs::remove_file(&seg)?;
                sync_parent_dir(path);
            }
        }
        let (active, torn_tail) = TrialJournal::load_file_with_tail(path)?;
        if torn_tail {
            let mut tmp_name = path.to_path_buf().into_os_string();
            tmp_name.push(".repair");
            let tmp = PathBuf::from(tmp_name);
            let mut repaired = TrialJournal::create_inner(&tmp, None)?;
            for rec in &active {
                repaired.append(rec)?;
            }
            repaired.file.sync_all()?;
            drop(repaired);
            std::fs::rename(&tmp, path)?;
            sync_parent_dir(path);
        }
        let active_records = active.len();
        append_deduped(&mut existing, active);
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            TrialJournal {
                file,
                path: path.to_path_buf(),
                written: 0,
                rotation,
                active_records,
            },
            existing,
        ))
    }

    /// Append one record: serialize, write, flush, fsync. When this
    /// returns `Ok`, the trial survives a crash. Rotating journals roll
    /// the active segment once it reaches the policy's record cap.
    pub fn append(&mut self, record: &TrialRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.written += 1;
        self.active_records += 1;
        if let Some(policy) = self.rotation {
            if self.active_records >= policy.max_records_per_segment {
                self.roll(policy)?;
            }
        }
        Ok(())
    }

    /// Rotate: archive the (fsync'd) active file as the next segment and
    /// start a fresh active file, compacting archives when they pile up.
    fn roll(&mut self, policy: RotationPolicy) -> std::io::Result<()> {
        self.file.sync_all()?;
        let segments = segment_paths(&self.path)?;
        let next = segments.last().map(|(n, _)| n + 1).unwrap_or(1);
        let seg_path = PathBuf::from(format!("{}.seg{next}", self.path.display()));
        std::fs::rename(&self.path, &seg_path)?;
        sync_parent_dir(&self.path);
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        self.active_records = 0;
        if policy.compact_after_segments > 0 && segments.len() + 1 > policy.compact_after_segments {
            self.compact_archives()?;
        }
        Ok(())
    }

    /// Merge every archived segment into the oldest one (atomic rename),
    /// then delete the now-redundant segment files. Crash-safe: an
    /// interrupted cleanup leaves duplicates that loading skips by index
    /// and the next `open_resume_rotating` deletes.
    fn compact_archives(&mut self) -> std::io::Result<()> {
        let segments = segment_paths(&self.path)?;
        if segments.len() < 2 {
            return Ok(());
        }
        let tmp = compact_tmp(&self.path);
        {
            let mut merged = TrialJournal::create_inner(&tmp, None)?;
            let mut all: Vec<TrialRecord> = Vec::new();
            for (_, seg) in &segments {
                let (records, torn) = TrialJournal::load_file_with_tail(seg)?;
                if torn {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("archived journal segment {seg:?} has a torn tail"),
                    ));
                }
                append_deduped(&mut all, records);
            }
            for rec in &all {
                let line = serde_json::to_string(rec).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                writeln!(merged.file, "{line}")?;
            }
            merged.file.sync_all()?;
        }
        let (oldest, rest) = segments.split_first().expect("len >= 2");
        std::fs::rename(&tmp, &oldest.1)?;
        sync_parent_dir(&self.path);
        for (_, seg) in rest {
            std::fs::remove_file(seg)?;
        }
        sync_parent_dir(&self.path);
        Ok(())
    }

    /// Records appended through this handle.
    pub fn written(&self) -> usize {
        self.written
    }

    /// The journal's (active-segment) path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of archived segment files currently on disk.
    pub fn archived_segments(&self) -> std::io::Result<usize> {
        Ok(segment_paths(&self.path)?.len())
    }

    /// Load every intact record from `path`: archived segments (oldest
    /// first) when the journal rotated, then the active file. A missing
    /// file is an empty journal; a malformed *final* line of the active
    /// file (torn write) is dropped; malformed earlier lines — and any
    /// malformed line in an archive — are an error. Records whose index
    /// was already seen (interrupted compaction) are skipped.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Vec<TrialRecord>> {
        let path = path.as_ref();
        let mut out: Vec<TrialRecord> = Vec::new();
        for (_, seg) in segment_paths(path)? {
            let (records, torn) = TrialJournal::load_file_with_tail(&seg)?;
            if torn {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("archived journal segment {seg:?} has a torn tail"),
                ));
            }
            append_deduped(&mut out, records);
        }
        let (active, _) = TrialJournal::load_file_with_tail(path)?;
        append_deduped(&mut out, active);
        Ok(out)
    }

    /// Load one journal file, reporting whether a torn final line was
    /// dropped.
    fn load_file_with_tail(path: impl AsRef<Path>) -> std::io::Result<(Vec<TrialRecord>, bool)> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok((Vec::new(), false));
        }
        let text = std::fs::read_to_string(path)?;
        let lines: Vec<&str> = text.lines().collect();
        let mut out = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<TrialRecord>(line) {
                Ok(rec) => out.push(rec),
                Err(e) => {
                    let tail_is_blank = lines[i + 1..].iter().all(|l| l.trim().is_empty());
                    if tail_is_blank {
                        // Torn final line: the crash we are designed for.
                        return Ok((out, true));
                    }
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("journal {path:?} corrupt at line {}: {e}", i + 1),
                    ));
                }
            }
        }
        Ok((out, false))
    }
}

/// Path of the compaction temp file for `path`.
fn compact_tmp(path: &Path) -> PathBuf {
    let mut name = path.to_path_buf().into_os_string();
    name.push(".compact");
    PathBuf::from(name)
}

/// Append `records` to `out`, skipping records whose index was already
/// accumulated — the deterministic repair for duplicates left by an
/// interrupted compaction (indices are strictly increasing in a run).
fn append_deduped(out: &mut Vec<TrialRecord>, records: Vec<TrialRecord>) {
    let mut next = out.last().map(|r| r.index + 1).unwrap_or(0);
    for rec in records {
        if rec.index >= next {
            next = rec.index + 1;
            out.push(rec);
        }
    }
}

/// Error for a resume whose journal was written by a different
/// compile/optimization pipeline than the one now running: replaying
/// those costs would silently mix measurements from two engines.
pub fn pipeline_mismatch_error(
    index: usize,
    recorded: &Option<String>,
    current: &Option<String>,
) -> std::io::Error {
    let show = |p: &Option<String>| p.clone().unwrap_or_else(|| "<none>".into());
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!(
            "journal record {index} was measured under pipeline {}, but the current engine is {} \
             (stale costs are not replayable; delete the journal or rerun under the original \
             pipeline)",
            show(recorded),
            show(current)
        ),
    )
}

/// Error for a resume whose journal disagrees with the tuner's proposals
/// (different seed, options, or evaluator than the original run).
pub fn divergence_error(index: usize, expected: &str, proposed: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!(
            "journal diverges at trial {index}: journal has {expected}, tuner proposed {proposed} \
             (resume requires the same seed, options and evaluator as the original run)"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::ParamValue;

    fn rec(i: usize, rt: Option<f64>, err: Option<MeasureError>) -> TrialRecord {
        TrialRecord {
            index: i,
            config: Configuration::new(vec!["P0".into()], vec![ParamValue::Int(i as i64 + 1)]),
            runtime_s: rt,
            error: err,
            eval_process_s: 0.5,
            elapsed_s: i as f64,
            pipeline: Some("vm/test".into()),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ytopt-bo-journal-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    /// Remove a journal plus any rotation debris.
    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        if let Ok(segs) = segment_paths(path) {
            for (_, seg) in segs {
                let _ = std::fs::remove_file(seg);
            }
        }
        let _ = std::fs::remove_file(compact_tmp(path));
    }

    #[test]
    fn append_load_roundtrip() {
        let path = tmp("roundtrip.jsonl");
        let mut j = TrialJournal::create(&path).expect("create");
        let a = rec(0, Some(1.5), None);
        let b = rec(1, None, Some(MeasureError::Transient("net".into())));
        j.append(&a).expect("append");
        j.append(&b).expect("append");
        assert_eq!(j.written(), 2);
        let back = TrialJournal::load(&path).expect("load");
        assert_eq!(back, vec![a, b]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmp("does-not-exist.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(TrialJournal::load(&path).expect("load").is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn.jsonl");
        let mut j = TrialJournal::create(&path).expect("create");
        let a = rec(0, Some(1.0), None);
        j.append(&a).expect("append");
        drop(j);
        // Simulate a crash mid-append: half a JSON object, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "{{\"index\":1,\"conf").expect("write");
        drop(f);
        let back = TrialJournal::load(&path).expect("load tolerates torn tail");
        assert_eq!(back, vec![a.clone()]);
        // Resuming rewrites the intact prefix only.
        let (j2, loaded) = TrialJournal::open_resume(&path).expect("resume");
        drop(j2);
        assert_eq!(loaded, vec![a.clone()]);
        assert_eq!(TrialJournal::load(&path).expect("reload"), vec![a]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("corrupt.jsonl");
        let mut j = TrialJournal::create(&path).expect("create");
        j.append(&rec(0, Some(1.0), None)).expect("append");
        j.append(&rec(1, Some(2.0), None)).expect("append");
        drop(j);
        let text = std::fs::read_to_string(&path).expect("read");
        let mangled = text.replacen("\"index\":0", "\"index\":garbage", 1);
        std::fs::write(&path, mangled).expect("write");
        assert!(TrialJournal::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_truncates() {
        let path = tmp("truncate.jsonl");
        let mut j = TrialJournal::create(&path).expect("create");
        j.append(&rec(0, Some(1.0), None)).expect("append");
        drop(j);
        let j2 = TrialJournal::create(&path).expect("recreate");
        drop(j2);
        assert!(TrialJournal::load(&path).expect("load").is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_splits_segments_and_load_sees_one_tape() {
        let path = tmp("rotating.jsonl");
        cleanup(&path);
        let policy = RotationPolicy {
            max_records_per_segment: 3,
            compact_after_segments: 0,
        };
        let mut j = TrialJournal::create_rotating(&path, policy).expect("create");
        let records: Vec<TrialRecord> = (0..8).map(|i| rec(i, Some(i as f64), None)).collect();
        for r in &records {
            j.append(r).expect("append");
        }
        // 8 records at 3/segment: two archived segments + 2 in the active.
        assert_eq!(j.archived_segments().expect("segments"), 2);
        drop(j);
        assert_eq!(TrialJournal::load(&path).expect("load"), records);
        cleanup(&path);
    }

    #[test]
    fn rotating_resume_with_torn_active_tail() {
        let path = tmp("rotating-torn.jsonl");
        cleanup(&path);
        let policy = RotationPolicy {
            max_records_per_segment: 2,
            compact_after_segments: 0,
        };
        let mut j = TrialJournal::create_rotating(&path, policy).expect("create");
        let records: Vec<TrialRecord> = (0..5).map(|i| rec(i, Some(i as f64), None)).collect();
        for r in &records {
            j.append(r).expect("append");
        }
        drop(j);
        // Crash mid-append into the active segment.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "{{\"index\":5,\"conf").expect("write");
        drop(f);
        let (mut j2, loaded) = TrialJournal::open_resume_rotating(&path, policy).expect("resume");
        assert_eq!(loaded, records, "torn tail dropped, archives intact");
        // Appending continues the tape and keeps rotating.
        let more = rec(5, Some(5.0), None);
        j2.append(&more).expect("append");
        drop(j2);
        let mut want = records;
        want.push(more);
        assert_eq!(TrialJournal::load(&path).expect("load"), want);
        cleanup(&path);
    }

    #[test]
    fn torn_archive_segment_is_an_error() {
        let path = tmp("rotating-torn-archive.jsonl");
        cleanup(&path);
        let policy = RotationPolicy {
            max_records_per_segment: 2,
            compact_after_segments: 0,
        };
        let mut j = TrialJournal::create_rotating(&path, policy).expect("create");
        for i in 0..4 {
            j.append(&rec(i, Some(1.0), None)).expect("append");
        }
        drop(j);
        let seg1 = PathBuf::from(format!("{}.seg1", path.display()));
        let mut f = OpenOptions::new().append(true).open(&seg1).expect("open");
        write!(f, "{{\"torn\":").expect("write");
        drop(f);
        assert!(TrialJournal::load(&path).is_err());
        assert!(TrialJournal::open_resume_rotating(&path, policy).is_err());
        cleanup(&path);
    }

    #[test]
    fn compaction_merges_archives() {
        let path = tmp("compacting.jsonl");
        cleanup(&path);
        let policy = RotationPolicy {
            max_records_per_segment: 2,
            compact_after_segments: 3,
        };
        let mut j = TrialJournal::create_rotating(&path, policy).expect("create");
        let records: Vec<TrialRecord> = (0..16).map(|i| rec(i, Some(i as f64), None)).collect();
        for r in &records {
            j.append(r).expect("append");
        }
        // Without compaction 16 records at 2/segment would leave 8
        // archives; compaction keeps the count at or below the threshold.
        assert!(
            j.archived_segments().expect("segments") <= policy.compact_after_segments,
            "archives must be compacted"
        );
        drop(j);
        assert_eq!(TrialJournal::load(&path).expect("load"), records);
        cleanup(&path);
    }

    #[test]
    fn interrupted_compaction_cleanup_is_repaired_on_load_and_resume() {
        let path = tmp("compact-interrupted.jsonl");
        cleanup(&path);
        let policy = RotationPolicy {
            max_records_per_segment: 2,
            compact_after_segments: 0,
        };
        let mut j = TrialJournal::create_rotating(&path, policy).expect("create");
        let records: Vec<TrialRecord> = (0..6).map(|i| rec(i, Some(i as f64), None)).collect();
        for r in &records {
            j.append(r).expect("append");
        }
        drop(j);
        // Simulate a compaction that crashed after renaming the merged
        // file over seg1 but before removing seg2/seg3: seg1 now holds
        // everything the archives held, and the old files linger.
        let seg1 = PathBuf::from(format!("{}.seg1", path.display()));
        let merged: Vec<TrialRecord> = records[..4].to_vec();
        let mut m = TrialJournal::create(&seg1).expect("rewrite seg1");
        for r in &merged {
            m.append(r).expect("append");
        }
        drop(m);
        // seg2 (records 2..4) is now fully duplicated inside seg1.
        assert_eq!(
            TrialJournal::load(&path).expect("load skips duplicates"),
            records
        );
        let (j2, loaded) =
            TrialJournal::open_resume_rotating(&path, policy).expect("resume repairs");
        drop(j2);
        assert_eq!(loaded, records);
        // The redundant segment file was deleted by the resume.
        let segs = segment_paths(&path).expect("segments");
        assert_eq!(segs.len(), 1, "redundant archive removed: {segs:?}");
        cleanup(&path);
    }

    #[test]
    fn rotating_journal_survives_roll_boundary_resume_exactly() {
        // The regression the service relies on: killing a session right
        // at a rotation boundary and resuming must reproduce the full
        // tape, byte-for-byte equal records.
        let path = tmp("boundary.jsonl");
        cleanup(&path);
        let policy = RotationPolicy {
            max_records_per_segment: 3,
            compact_after_segments: 0,
        };
        let mut j = TrialJournal::create_rotating(&path, policy).expect("create");
        let records: Vec<TrialRecord> = (0..6).map(|i| rec(i, Some(i as f64), None)).collect();
        for r in &records[..3] {
            j.append(r).expect("append");
        }
        // The third append rolled the segment; "kill" the process here.
        assert_eq!(j.archived_segments().expect("segments"), 1);
        drop(j);
        let (mut j2, loaded) = TrialJournal::open_resume_rotating(&path, policy).expect("resume");
        assert_eq!(loaded, records[..3].to_vec());
        for r in &records[3..] {
            j2.append(r).expect("append");
        }
        drop(j2);
        assert_eq!(TrialJournal::load(&path).expect("load"), records);
        cleanup(&path);
    }
}
