//! Crash-consistent trial journal: an append-only JSONL log, fsync'd per
//! trial, shared by the AutoTVM driver and the BO optimizer.
//!
//! Every completed evaluation is serialized as one JSON line and synced
//! to disk before the next proposal is made, so a crash (or `kill -9`)
//! loses at most the trial in flight. [`TrialJournal::load`] tolerates a
//! torn final line — the signature of a crash mid-append — by dropping
//! it; corruption anywhere *before* the tail is a hard error, because it
//! means the file was edited, not interrupted.
//!
//! Resume works by *replaying the tape*: the driver/optimizer runs its
//! normal propose loop, and as long as journal records remain, each
//! proposal is satisfied from the journal instead of being evaluated
//! (after verifying the proposed configuration matches the recorded
//! one). Because every tuner is a deterministic function of (seed,
//! history), the continued run's remaining trajectory is identical to an
//! uninterrupted run's.

use crate::fault::MeasureError;
use configspace::Configuration;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One journaled trial (superset of the information in
/// `autotvm::record::TuningRecord`: failures keep their error class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// 0-based evaluation index within the run.
    pub index: usize,
    /// The evaluated configuration.
    pub config: Configuration,
    /// Measured runtime, seconds (`None` on failure).
    pub runtime_s: Option<f64>,
    /// Failure class, if the trial failed.
    #[serde(default)]
    pub error: Option<MeasureError>,
    /// Process time this evaluation consumed (including harness retries
    /// and timeout charges).
    pub eval_process_s: f64,
    /// Cumulative process time when the trial finished.
    pub elapsed_s: f64,
    /// Fingerprint of the compile/optimization pipeline that produced
    /// this measurement (`None` for compiler-independent evaluators, and
    /// for journals written before the field existed). Resume refuses to
    /// replay a record whose fingerprint differs from the current one.
    #[serde(default)]
    pub pipeline: Option<String>,
}

/// An open, append-only journal file.
pub struct TrialJournal {
    file: File,
    path: PathBuf,
    written: usize,
}

impl TrialJournal {
    /// Start a fresh journal at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<TrialJournal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(TrialJournal {
            file,
            path,
            written: 0,
        })
    }

    /// Open `path` for appending, first loading every intact record
    /// already present (empty when the file does not exist yet).
    ///
    /// An intact journal is opened in append mode untouched. Only when a
    /// torn tail line (crash mid-append) is detected is the intact prefix
    /// rewritten — to a temp file that is atomically renamed over the
    /// original, so already-fsync'd trials can never be lost to a crash
    /// during the repair itself.
    pub fn open_resume(
        path: impl AsRef<Path>,
    ) -> std::io::Result<(TrialJournal, Vec<TrialRecord>)> {
        let path = path.as_ref().to_path_buf();
        let (existing, torn_tail) = TrialJournal::load_with_tail(&path)?;
        if torn_tail {
            let mut tmp_name = path.clone().into_os_string();
            tmp_name.push(".repair");
            let tmp = PathBuf::from(tmp_name);
            let mut repaired = TrialJournal::create(&tmp)?;
            for rec in &existing {
                repaired.append(rec)?;
            }
            repaired.file.sync_all()?;
            drop(repaired);
            std::fs::rename(&tmp, &path)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            TrialJournal {
                file,
                path,
                written: 0,
            },
            existing,
        ))
    }

    /// Append one record: serialize, write, flush, fsync. When this
    /// returns `Ok`, the trial survives a crash.
    pub fn append(&mut self, record: &TrialRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.written += 1;
        Ok(())
    }

    /// Records appended through this handle.
    pub fn written(&self) -> usize {
        self.written
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Load every intact record from `path`. A missing file is an empty
    /// journal; a malformed *final* line (torn write) is dropped;
    /// malformed earlier lines are an error.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Vec<TrialRecord>> {
        Ok(TrialJournal::load_with_tail(path)?.0)
    }

    /// [`TrialJournal::load`], also reporting whether a torn final line
    /// was dropped.
    fn load_with_tail(path: impl AsRef<Path>) -> std::io::Result<(Vec<TrialRecord>, bool)> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok((Vec::new(), false));
        }
        let text = std::fs::read_to_string(path)?;
        let lines: Vec<&str> = text.lines().collect();
        let mut out = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<TrialRecord>(line) {
                Ok(rec) => out.push(rec),
                Err(e) => {
                    let tail_is_blank = lines[i + 1..].iter().all(|l| l.trim().is_empty());
                    if tail_is_blank {
                        // Torn final line: the crash we are designed for.
                        return Ok((out, true));
                    }
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("journal {path:?} corrupt at line {}: {e}", i + 1),
                    ));
                }
            }
        }
        Ok((out, false))
    }
}

/// Error for a resume whose journal was written by a different
/// compile/optimization pipeline than the one now running: replaying
/// those costs would silently mix measurements from two engines.
pub fn pipeline_mismatch_error(
    index: usize,
    recorded: &Option<String>,
    current: &Option<String>,
) -> std::io::Error {
    let show = |p: &Option<String>| p.clone().unwrap_or_else(|| "<none>".into());
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!(
            "journal record {index} was measured under pipeline {}, but the current engine is {} \
             (stale costs are not replayable; delete the journal or rerun under the original \
             pipeline)",
            show(recorded),
            show(current)
        ),
    )
}

/// Error for a resume whose journal disagrees with the tuner's proposals
/// (different seed, options, or evaluator than the original run).
pub fn divergence_error(index: usize, expected: &str, proposed: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!(
            "journal diverges at trial {index}: journal has {expected}, tuner proposed {proposed} \
             (resume requires the same seed, options and evaluator as the original run)"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::ParamValue;

    fn rec(i: usize, rt: Option<f64>, err: Option<MeasureError>) -> TrialRecord {
        TrialRecord {
            index: i,
            config: Configuration::new(vec!["P0".into()], vec![ParamValue::Int(i as i64 + 1)]),
            runtime_s: rt,
            error: err,
            eval_process_s: 0.5,
            elapsed_s: i as f64,
            pipeline: Some("vm/test".into()),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ytopt-bo-journal-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn append_load_roundtrip() {
        let path = tmp("roundtrip.jsonl");
        let mut j = TrialJournal::create(&path).expect("create");
        let a = rec(0, Some(1.5), None);
        let b = rec(1, None, Some(MeasureError::Transient("net".into())));
        j.append(&a).expect("append");
        j.append(&b).expect("append");
        assert_eq!(j.written(), 2);
        let back = TrialJournal::load(&path).expect("load");
        assert_eq!(back, vec![a, b]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmp("does-not-exist.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(TrialJournal::load(&path).expect("load").is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn.jsonl");
        let mut j = TrialJournal::create(&path).expect("create");
        let a = rec(0, Some(1.0), None);
        j.append(&a).expect("append");
        drop(j);
        // Simulate a crash mid-append: half a JSON object, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "{{\"index\":1,\"conf").expect("write");
        drop(f);
        let back = TrialJournal::load(&path).expect("load tolerates torn tail");
        assert_eq!(back, vec![a.clone()]);
        // Resuming rewrites the intact prefix only.
        let (j2, loaded) = TrialJournal::open_resume(&path).expect("resume");
        drop(j2);
        assert_eq!(loaded, vec![a.clone()]);
        assert_eq!(TrialJournal::load(&path).expect("reload"), vec![a]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("corrupt.jsonl");
        let mut j = TrialJournal::create(&path).expect("create");
        j.append(&rec(0, Some(1.0), None)).expect("append");
        j.append(&rec(1, Some(2.0), None)).expect("append");
        drop(j);
        let text = std::fs::read_to_string(&path).expect("read");
        let mangled = text.replacen("\"index\":0", "\"index\":garbage", 1);
        std::fs::write(&path, mangled).expect("write");
        assert!(TrialJournal::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_truncates() {
        let path = tmp("truncate.jsonl");
        let mut j = TrialJournal::create(&path).expect("create");
        j.append(&rec(0, Some(1.0), None)).expect("append");
        drop(j);
        let j2 = TrialJournal::create(&path).expect("recreate");
        drop(j2);
        assert!(TrialJournal::load(&path).expect("load").is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
