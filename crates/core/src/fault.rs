//! Structured measurement-failure taxonomy.
//!
//! Real autotuning measurements fail constantly — builds error out,
//! schedules turn out invalid, runners hang or crash, outputs fail
//! verification, and infrastructure hiccups produce spurious one-off
//! failures. TVM's measure pipeline models these as distinct error
//! classes; this module is our equivalent, shared by the AutoTVM
//! measurement pipeline (`autotvm::measure::MeasureResult`) and the BO
//! framework ([`crate::problem::Evaluation`]).
//!
//! The taxonomy matters operationally: only [`MeasureError::Transient`]
//! failures are worth retrying, while the deterministic classes
//! (build/schedule/numeric) should be penalized and avoided by the
//! search.

use serde::{Deserialize, Serialize};

/// Why a measurement failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MeasureError {
    /// The build/compile pipeline failed for this configuration
    /// (deterministic: retrying cannot help).
    BuildFailed(String),
    /// The configuration does not describe a valid schedule for the
    /// kernel (out-of-space values, non-dividing tile factors, …).
    InvalidSchedule(String),
    /// The static schedule-safety analyzer rejected the lowered function
    /// before any compilation or measurement (out-of-bounds proof,
    /// parallel race). Deterministic and cheap: only analysis time was
    /// spent, and tuners may treat the verdict as free knowledge.
    StaticReject(String),
    /// The evaluation exceeded its wall-clock limit and was abandoned.
    Timeout {
        /// The enforced wall-clock limit, seconds (0 when unknown, e.g.
        /// when classified from a free-form message).
        limit_s: f64,
        /// The original error text, when the timeout was classified from
        /// a free-form message rather than enforced by the harness.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        message: Option<String>,
    },
    /// The evaluation panicked or the device/runner crashed.
    RuntimeCrash(String),
    /// The kernel ran but its output failed numeric verification.
    NumericMismatch(String),
    /// A spurious infrastructure failure (flaky node, dropped
    /// connection); retrying may succeed.
    Transient(String),
}

impl MeasureError {
    /// Short class name, stable across message changes (useful for
    /// aggregation and logs).
    pub fn kind(&self) -> &'static str {
        match self {
            MeasureError::BuildFailed(_) => "build_failed",
            MeasureError::InvalidSchedule(_) => "invalid_schedule",
            MeasureError::StaticReject(_) => "static_reject",
            MeasureError::Timeout { .. } => "timeout",
            MeasureError::RuntimeCrash(_) => "runtime_crash",
            MeasureError::NumericMismatch(_) => "numeric_mismatch",
            MeasureError::Transient(_) => "transient",
        }
    }

    /// The human-readable detail carried by the error.
    pub fn message(&self) -> &str {
        match self {
            MeasureError::BuildFailed(m)
            | MeasureError::InvalidSchedule(m)
            | MeasureError::StaticReject(m)
            | MeasureError::RuntimeCrash(m)
            | MeasureError::NumericMismatch(m)
            | MeasureError::Transient(m) => m,
            MeasureError::Timeout {
                message: Some(m), ..
            } => m,
            MeasureError::Timeout { message: None, .. } => "wall-clock timeout",
        }
    }

    /// True for failures where an immediate retry has a chance of
    /// succeeding (the harness's retry policy keys off this).
    pub fn is_transient(&self) -> bool {
        matches!(self, MeasureError::Transient(_))
    }

    /// Classify a legacy free-form error message into the taxonomy.
    ///
    /// Used by the `From<String>` conversions so call sites that used to
    /// build stringly-typed errors (`MeasureResult::fail("boom", …)`)
    /// keep working while gaining a best-effort class.
    pub fn classify(message: impl Into<String>) -> MeasureError {
        let message = message.into();
        let lower = message.to_lowercase();
        if lower.contains("timed out") || lower.contains("timeout") {
            MeasureError::Timeout {
                limit_s: 0.0,
                message: Some(message),
            }
        } else if lower.contains("transient")
            || lower.contains("flaky")
            || lower.contains("spurious")
        {
            MeasureError::Transient(message)
        } else if lower.contains("static") && (lower.contains("reject") || lower.contains("tir-")) {
            // Checked before the schedule heuristics so analyzer verdicts
            // ("statically rejected: TIR-OOB ...") keep their class.
            MeasureError::StaticReject(message)
        } else if lower.contains("build") || lower.contains("compil") || lower.contains("link") {
            // Checked before the schedule heuristics: a build error whose
            // text mentions the schedule is still a build failure.
            MeasureError::BuildFailed(message)
        } else if lower.contains("not in space")
            || lower.contains("invalid")
            || lower.contains("schedule")
            || lower.contains("reject")
        {
            MeasureError::InvalidSchedule(message)
        } else if lower.contains("mismatch") || lower.contains("numeric") || lower.contains("nan") {
            MeasureError::NumericMismatch(message)
        } else {
            MeasureError::RuntimeCrash(message)
        }
    }
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Timeout {
                message: Some(m), ..
            } => write!(f, "[timeout] {m}"),
            MeasureError::Timeout {
                limit_s,
                message: None,
            } => {
                write!(f, "[timeout] exceeded wall-clock limit of {limit_s} s")
            }
            other => write!(f, "[{}] {}", other.kind(), other.message()),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<String> for MeasureError {
    fn from(message: String) -> MeasureError {
        MeasureError::classify(message)
    }
}

impl From<&str> for MeasureError {
    fn from(message: &str) -> MeasureError {
        MeasureError::classify(message)
    }
}

/// Best-effort text of a panic payload (from `catch_unwind` or a failed
/// thread join).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_heuristics() {
        assert_eq!(
            MeasureError::classify("evaluation timed out").kind(),
            "timeout"
        );
        assert_eq!(
            MeasureError::classify("configuration {} not in space").kind(),
            "invalid_schedule"
        );
        assert_eq!(
            MeasureError::classify("tvm.build: compile error").kind(),
            "build_failed"
        );
        assert_eq!(
            MeasureError::classify("output mismatch at [3]").kind(),
            "numeric_mismatch"
        );
        assert_eq!(
            MeasureError::classify("transient device fault").kind(),
            "transient"
        );
        assert_eq!(MeasureError::classify("oom").kind(), "runtime_crash");
        assert_eq!(
            MeasureError::classify("statically rejected: TIR-OOB store out of bounds").kind(),
            "static_reject"
        );
        // "reject" alone (no static analyzer context) stays a schedule error.
        assert_eq!(
            MeasureError::classify("schedule rejected by runner").kind(),
            "invalid_schedule"
        );
        // Build errors win over schedule-ish words in the same message.
        assert_eq!(
            MeasureError::classify("build failed while lowering schedule").kind(),
            "build_failed"
        );
    }

    #[test]
    fn classified_timeout_keeps_original_message() {
        let t = MeasureError::classify("runner timed out after 3 s");
        assert_eq!(t.kind(), "timeout");
        assert_eq!(t.message(), "runner timed out after 3 s");
        assert_eq!(format!("{t}"), "[timeout] runner timed out after 3 s");
    }

    #[test]
    fn static_reject_is_deterministic_and_distinct_from_build() {
        let e = MeasureError::StaticReject("TIR-RACE-WW: parallel write overlap".into());
        assert_eq!(e.kind(), "static_reject");
        assert!(!e.is_transient());
        assert_eq!(
            format!("{e}"),
            "[static_reject] TIR-RACE-WW: parallel write overlap"
        );
        let s = serde_json::to_string(&e).expect("serialize");
        assert_eq!(e, serde_json::from_str::<MeasureError>(&s).expect("de"));
        assert_ne!(e.kind(), MeasureError::BuildFailed("x".into()).kind());
    }

    #[test]
    fn only_transient_is_retryable() {
        assert!(MeasureError::Transient("x".into()).is_transient());
        assert!(!MeasureError::BuildFailed("x".into()).is_transient());
        assert!(!MeasureError::StaticReject("x".into()).is_transient());
        assert!(!MeasureError::Timeout {
            limit_s: 1.0,
            message: None
        }
        .is_transient());
    }

    #[test]
    fn serde_roundtrip() {
        let e = MeasureError::Timeout {
            limit_s: 2.5,
            message: None,
        };
        let s = serde_json::to_string(&e).expect("serialize");
        let back: MeasureError = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(e, back);
        // Pre-message-field journals (no `message` key) still load.
        let legacy: MeasureError =
            serde_json::from_str("{\"Timeout\":{\"limit_s\":1.5}}").expect("legacy");
        assert_eq!(
            legacy,
            MeasureError::Timeout {
                limit_s: 1.5,
                message: None
            }
        );
        let e = MeasureError::Transient("flaky node".into());
        let s = serde_json::to_string(&e).expect("serialize");
        assert_eq!(e, serde_json::from_str::<MeasureError>(&s).expect("de"));
    }

    #[test]
    fn display_carries_kind_and_message() {
        let e = MeasureError::BuildFailed("no codegen".into());
        assert_eq!(format!("{e}"), "[build_failed] no codegen");
        assert_eq!(e.message(), "no codegen");
    }
}
