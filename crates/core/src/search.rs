//! The ask/tell Bayesian-optimization search.

use crate::acquisition::Acquisition;
use configspace::{ConfigSpace, Configuration};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;
use surrogate::forest::RandomForest;
use surrogate::Regressor;

/// Spaces up to this size are ranked exhaustively; larger spaces rank a
/// random candidate sample plus neighbours of the incumbents.
const GRID_LIMIT: u128 = 1 << 16;

/// Tunable knobs of the search (ytopt-style defaults).
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Random configurations before the first surrogate fit.
    pub n_initial: usize,
    /// Acquisition function (ytopt: LCB with κ = 1.96).
    pub acquisition: Acquisition,
    /// Trees in the Random-Forest surrogate.
    pub n_trees: usize,
    /// Candidate samples per ask on large spaces.
    pub n_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            n_initial: 10,
            acquisition: Acquisition::default(),
            n_trees: 32,
            n_candidates: 1024,
            seed: 0,
        }
    }
}

/// Ask/tell Bayesian optimizer: Random-Forest surrogate + acquisition
/// ranking (the search method inside ytopt).
pub struct BayesianOptimizer {
    space: ConfigSpace,
    cfg: SearchConfig,
    rng: SmallRng,
    observed_x: Vec<Vec<f64>>,
    observed_y: Vec<f64>,
    best_y: f64,
    best_config: Option<Configuration>,
    visited: HashSet<String>,
    exhausted: bool,
}

impl BayesianOptimizer {
    /// New optimizer over `space`.
    pub fn new(space: ConfigSpace, cfg: SearchConfig) -> BayesianOptimizer {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        BayesianOptimizer {
            space,
            cfg,
            rng,
            observed_x: Vec::new(),
            observed_y: Vec::new(),
            best_y: f64::INFINITY,
            best_config: None,
            visited: HashSet::new(),
            exhausted: false,
        }
    }

    /// The space being searched.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// Number of observations told so far.
    pub fn observed(&self) -> usize {
        self.observed_y.len()
    }

    /// Best (configuration, runtime) observed.
    pub fn incumbent(&self) -> Option<(&Configuration, f64)> {
        self.best_config.as_ref().map(|c| (c, self.best_y))
    }

    /// True when every configuration of a finite space has been proposed.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn random_unvisited(&mut self) -> Option<Configuration> {
        // Exact for small spaces, rejection sampling for large ones.
        if let Some(size) = self.space.size() {
            if (self.visited.len() as u128) >= size {
                return None;
            }
        }
        for _ in 0..10_000 {
            let c = self.space.sample(&mut self.rng);
            if !self.visited.contains(&c.key()) {
                return Some(c);
            }
        }
        // Dense visited set: fall back to scanning the grid.
        self.space.grid().find(|c| !self.visited.contains(&c.key()))
    }

    fn candidates(&mut self) -> Vec<Configuration> {
        let size = self.space.size().unwrap_or(u128::MAX);
        if size <= GRID_LIMIT {
            self.space
                .grid()
                .filter(|c| !self.visited.contains(&c.key()))
                .collect()
        } else {
            let mut out: Vec<Configuration> = Vec::with_capacity(self.cfg.n_candidates + 64);
            let mut keys: HashSet<String> = HashSet::new();
            while out.len() < self.cfg.n_candidates {
                let c = self.space.sample(&mut self.rng);
                let k = c.key();
                if !self.visited.contains(&k) && keys.insert(k) {
                    out.push(c);
                }
            }
            // Exploitation seeds: neighbours of the incumbent.
            if let Some(best) = self.best_config.clone() {
                for _ in 0..64 {
                    let c = self.space.neighbor(&best, &mut self.rng);
                    let k = c.key();
                    if !self.visited.contains(&k) && keys.insert(k) {
                        out.push(c);
                    }
                }
            }
            out
        }
    }

    /// Propose the next configuration to evaluate (step 1 of the paper's
    /// loop). Returns `None` when a finite space is exhausted.
    pub fn ask(&mut self) -> Option<Configuration> {
        let pick = if self.observed_y.len() < self.cfg.n_initial {
            self.random_unvisited()
        } else {
            let cands = self.candidates();
            if cands.is_empty() {
                None
            } else {
                let mut rf = RandomForest::new(self.cfg.n_trees)
                    .with_seed(self.cfg.seed ^ 0x5EED)
                    .with_min_samples_leaf(1);
                rf.fit(&self.observed_x, &self.observed_y);
                let acq = self.cfg.acquisition;
                let best = self.best_y;
                // Score all candidates in one parallel batch (bit-for-bit
                // identical to per-candidate scoring).
                let encoded: Vec<Vec<f64>> = cands.iter().map(|c| self.space.encode(c)).collect();
                cands
                    .into_iter()
                    .zip(rf.predict_with_std_batch(&encoded))
                    .map(|(c, (m, s))| (c, acq.score(m, s, best)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
            }
        };
        match pick {
            Some(c) => {
                self.visited.insert(c.key());
                Some(c)
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }

    /// Propose a batch using the constant-liar strategy: after each pick
    /// the incumbent runtime is "lied" in as its observation so subsequent
    /// picks diversify. (ytopt extension for asynchronous evaluation.)
    pub fn ask_batch(&mut self, n: usize) -> Vec<Configuration> {
        let mut out = Vec::with_capacity(n);
        let lie = if self.best_y.is_finite() {
            self.best_y
        } else {
            1.0
        };
        let mut lies = 0usize;
        for _ in 0..n {
            match self.ask() {
                Some(c) => {
                    self.observed_x.push(self.space.encode(&c));
                    self.observed_y.push(lie);
                    lies += 1;
                    out.push(c);
                }
                None => break,
            }
        }
        // Retract the lies; real observations arrive via `tell`.
        for _ in 0..lies {
            self.observed_x.pop();
            self.observed_y.pop();
        }
        out
    }

    /// Report the measured runtime for a configuration (step 5).
    /// Failures are told as a large penalty so the surrogate learns to
    /// avoid the region.
    pub fn tell(&mut self, config: &Configuration, runtime_s: Option<f64>) {
        self.visited.insert(config.key());
        let y = match runtime_s {
            Some(t) => t,
            None => {
                // Penalty: 10× the worst seen (or an arbitrary large value
                // before any success).
                let worst = self
                    .observed_y
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                if worst.is_finite() {
                    worst * 10.0
                } else {
                    1e6
                }
            }
        };
        self.observed_x.push(self.space.encode(config));
        self.observed_y.push(y);
        if runtime_s.is_some() && y < self.best_y {
            self.best_y = y;
            self.best_config = Some(config.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::Hyperparameter;

    fn space(n: i64) -> ConfigSpace {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=n).collect::<Vec<i64>>(),
        ));
        cs.add(Hyperparameter::ordinal_ints(
            "P1",
            &(1..=n).collect::<Vec<i64>>(),
        ));
        cs
    }

    fn objective(c: &Configuration) -> f64 {
        let (a, b) = (c.int("P0") as f64, c.int("P1") as f64);
        1.0 + 0.1 * ((a - 13.0).powi(2) + (b - 4.0).powi(2))
    }

    #[test]
    fn bo_beats_its_own_random_phase() {
        let mut bo = BayesianOptimizer::new(space(16), SearchConfig::default());
        let mut best_random = f64::INFINITY;
        let mut best_total = f64::INFINITY;
        for i in 0..60 {
            let c = bo.ask().expect("space not exhausted");
            let y = objective(&c);
            if i < 10 {
                best_random = best_random.min(y);
            }
            best_total = best_total.min(y);
            bo.tell(&c, Some(y));
        }
        assert!(best_total <= best_random);
        assert!(best_total < 2.0, "BO should get near 1.0, got {best_total}");
        let (inc, y) = bo.incumbent().expect("has incumbent");
        assert_eq!(objective(inc), y);
    }

    #[test]
    fn never_proposes_duplicates() {
        let mut bo = BayesianOptimizer::new(space(6), SearchConfig::default());
        let mut seen = HashSet::new();
        while let Some(c) = bo.ask() {
            assert!(seen.insert(c.key()), "duplicate {c}");
            bo.tell(&c, Some(objective(&c)));
        }
        assert_eq!(seen.len(), 36, "finite space fully enumerated");
        assert!(bo.is_exhausted());
    }

    #[test]
    fn ask_batch_returns_distinct() {
        let mut bo = BayesianOptimizer::new(space(16), SearchConfig::default());
        // Prime past the random phase.
        for _ in 0..12 {
            let c = bo.ask().expect("ask");
            bo.tell(&c, Some(objective(&c)));
        }
        let batch = bo.ask_batch(5);
        assert_eq!(batch.len(), 5);
        let keys: HashSet<_> = batch.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), 5);
        assert_eq!(bo.observed(), 12, "lies must be retracted");
    }

    #[test]
    fn failures_penalized_not_fatal() {
        let mut bo = BayesianOptimizer::new(space(8), SearchConfig::default());
        for _ in 0..20 {
            let c = bo.ask().expect("ask");
            // Fail half the evaluations.
            if c.int("P0") % 2 == 0 {
                bo.tell(&c, None);
            } else {
                bo.tell(&c, Some(objective(&c)));
            }
        }
        assert!(bo.incumbent().is_some());
        assert_eq!(bo.observed(), 20);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let run = |seed| {
            let cfg = SearchConfig {
                seed,
                ..Default::default()
            };
            let mut bo = BayesianOptimizer::new(space(16), cfg);
            let mut keys = Vec::new();
            for _ in 0..25 {
                let c = bo.ask().expect("ask");
                keys.push(c.key());
                bo.tell(&c, Some(objective(&c)));
            }
            keys
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }
}
