#![warn(missing_docs)]
//! # ytopt-bo — Bayesian-optimization autotuning (the paper's framework)
//!
//! A native reimplementation of the ytopt autotuner the paper plugs into
//! TVM: sample a few random configurations, fit a **Random-Forest
//! surrogate** over the (configuration → runtime) pairs, and repeatedly
//! evaluate the configuration minimizing the **lower-confidence-bound
//! (LCB)** acquisition over the surrogate's mean/uncertainty — balancing
//! exploitation (low predicted runtime) against exploration (high
//! ensemble variance).
//!
//! * [`problem::Problem`] — what to tune: a [`configspace::ConfigSpace`]
//!   plus an evaluation function (step 2–4 of the paper's framework:
//!   configure the code mold, compile, execute),
//! * [`search::BayesianOptimizer`] — ask/tell search (with constant-liar
//!   batch proposals as an extension),
//! * [`acquisition::Acquisition`] — LCB (the paper's choice), plus EI and
//!   PI for the ablation benches,
//! * [`optimizer::run`] — the budgeted loop (step 1–5), recording every
//!   trial into a [`database::PerformanceDatabase`],
//! * [`fault::MeasureError`] — the structured measurement-failure
//!   taxonomy shared with the AutoTVM measurement pipeline,
//! * [`journal::TrialJournal`] — crash-consistent per-trial journaling
//!   behind [`optimizer::run_journaled`] / [`optimizer::resume_from_journal`].
//!
//! ```
//! use configspace::{ConfigSpace, Hyperparameter};
//! use ytopt_bo::{optimizer, problem::FnProblem, BoOptions};
//!
//! let mut cs = ConfigSpace::new();
//! cs.add(Hyperparameter::ordinal_ints("P0", &(1..=32).collect::<Vec<_>>()));
//! let problem = FnProblem::new(cs, |c| {
//!     let x = c.int("P0") as f64;
//!     ytopt_bo::problem::Evaluation::ok((x - 20.0).abs() + 1.0, 1.0)
//! });
//! let result = optimizer::run(&problem, BoOptions { max_evals: 40, ..Default::default() });
//! assert!(result.best().expect("ran").runtime_s.expect("ok") < 4.0);
//! ```

pub mod acquisition;
pub mod database;
pub mod fault;
pub mod journal;
pub mod optimizer;
pub mod problem;
pub mod search;

pub use acquisition::Acquisition;
pub use database::PerformanceDatabase;
pub use fault::MeasureError;
pub use journal::{TrialJournal, TrialRecord};
pub use optimizer::{
    resume_from_journal, run, run_journaled, run_parallel, BoOptions, BoResult, BoTrial,
};
pub use problem::{CacheStats, Evaluation, JitStats, Problem, StaticCheckStats};
pub use search::BayesianOptimizer;
