//! The budgeted optimization loop (steps 1–5 of the paper's framework).

use crate::database::{DbRecord, PerformanceDatabase};
use crate::problem::Problem;
use crate::search::{BayesianOptimizer, SearchConfig};
use configspace::Configuration;
use std::time::Instant;

/// Budget and search options.
#[derive(Debug, Clone, Copy)]
pub struct BoOptions {
    /// Maximum evaluations (the paper: 100).
    pub max_evals: usize,
    /// Optional wall-clock cap on the autotuning process, seconds.
    pub max_process_s: Option<f64>,
    /// Search knobs.
    pub search: SearchConfig,
}

impl Default for BoOptions {
    fn default() -> Self {
        BoOptions {
            max_evals: 100,
            max_process_s: None,
            search: SearchConfig::default(),
        }
    }
}

/// One evaluated trial.
#[derive(Debug, Clone)]
pub struct BoTrial {
    /// Evaluation index.
    pub index: usize,
    /// The configuration.
    pub config: Configuration,
    /// Measured runtime.
    pub runtime_s: Option<f64>,
    /// Process time this evaluation consumed.
    pub eval_process_s: f64,
    /// Cumulative process time when the trial finished.
    pub elapsed_s: f64,
}

/// Result of a BO run.
#[derive(Debug, Clone)]
pub struct BoResult {
    /// Trials in evaluation order.
    pub trials: Vec<BoTrial>,
    /// Total autotuning process time (search think time + evaluations).
    pub total_process_s: f64,
    /// Wall-clock spent inside the search itself.
    pub think_s: f64,
}

impl BoResult {
    /// Best successful trial.
    pub fn best(&self) -> Option<&BoTrial> {
        self.trials
            .iter()
            .filter(|t| t.runtime_s.is_some())
            .min_by(|a, b| {
                a.runtime_s
                    .partial_cmp(&b.runtime_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Number of evaluations.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True when no trial ran.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Export into a [`PerformanceDatabase`].
    pub fn to_database(&self, problem: &str) -> PerformanceDatabase {
        let mut db = PerformanceDatabase::new(problem);
        for t in &self.trials {
            db.push(DbRecord {
                index: t.index,
                config: t.config.clone(),
                runtime_s: t.runtime_s,
                elapsed_s: t.elapsed_s,
            });
        }
        db
    }
}

/// Run Bayesian optimization on `problem` within `opts`' budget.
///
/// Process-time accounting matches the baseline driver in the `autotvm`
/// crate: real surrogate/acquisition wall time plus each evaluation's
/// (possibly simulated) process seconds — the paper's "overall autotuning
/// process time".
pub fn run(problem: &dyn Problem, opts: BoOptions) -> BoResult {
    let mut bo = BayesianOptimizer::new(problem.space().clone(), opts.search);
    let mut trials: Vec<BoTrial> = Vec::with_capacity(opts.max_evals);
    let mut elapsed = 0.0f64;
    let mut think = 0.0f64;

    while trials.len() < opts.max_evals {
        if let Some(cap) = opts.max_process_s {
            if elapsed >= cap {
                break;
            }
        }
        let t0 = Instant::now();
        let Some(config) = bo.ask() else { break };
        let dt = t0.elapsed().as_secs_f64();
        think += dt;
        elapsed += dt;

        let eval = problem.evaluate(&config);
        elapsed += eval.process_s;
        trials.push(BoTrial {
            index: trials.len(),
            config: config.clone(),
            runtime_s: eval.runtime_s,
            eval_process_s: eval.process_s,
            elapsed_s: elapsed,
        });

        let t1 = Instant::now();
        bo.tell(&config, eval.runtime_s);
        let dt = t1.elapsed().as_secs_f64();
        think += dt;
        elapsed += dt;
    }

    BoResult {
        trials,
        total_process_s: elapsed,
        think_s: think,
    }
}

/// Run Bayesian optimization with **parallel batch evaluation**: each
/// iteration asks for `batch` configurations via the constant-liar
/// strategy and evaluates them concurrently on worker threads (crossbeam
/// scoped threads; the problem must be `Sync`).
///
/// This is the asynchronous-evaluation extension of ytopt (the paper's
/// framework evaluates sequentially); process-time accounting charges the
/// *maximum* evaluation time of each batch — the wall-clock a
/// `batch`-wide worker pool would observe — plus the search's own time.
pub fn run_parallel<P: Problem + Sync>(problem: &P, opts: BoOptions, batch: usize) -> BoResult {
    let batch = batch.max(1);
    let mut bo = BayesianOptimizer::new(problem.space().clone(), opts.search);
    let mut trials: Vec<BoTrial> = Vec::with_capacity(opts.max_evals);
    let mut elapsed = 0.0f64;
    let mut think = 0.0f64;

    while trials.len() < opts.max_evals {
        if let Some(cap) = opts.max_process_s {
            if elapsed >= cap {
                break;
            }
        }
        let want = batch.min(opts.max_evals - trials.len());
        let t0 = Instant::now();
        let configs = bo.ask_batch(want);
        let dt = t0.elapsed().as_secs_f64();
        think += dt;
        elapsed += dt;
        if configs.is_empty() {
            break;
        }

        // Evaluate the whole batch concurrently.
        let evals: Vec<crate::problem::Evaluation> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = configs
                .iter()
                .map(|cfg| scope.spawn(move |_| problem.evaluate(cfg)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluation worker panicked"))
                .collect()
        })
        .expect("crossbeam scope");

        // A batch-wide pool finishes when its slowest member does.
        let batch_wall = evals
            .iter()
            .map(|e| e.process_s)
            .fold(0.0f64, f64::max);
        elapsed += batch_wall;

        let t1 = Instant::now();
        for (config, eval) in configs.into_iter().zip(evals) {
            trials.push(BoTrial {
                index: trials.len(),
                config: config.clone(),
                runtime_s: eval.runtime_s,
                eval_process_s: eval.process_s,
                elapsed_s: elapsed,
            });
            bo.tell(&config, eval.runtime_s);
        }
        let dt = t1.elapsed().as_secs_f64();
        think += dt;
        elapsed += dt;
    }

    BoResult {
        trials,
        total_process_s: elapsed,
        think_s: think,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Evaluation, FnProblem};
    use configspace::{ConfigSpace, Hyperparameter};

    fn problem() -> FnProblem<impl Fn(&Configuration) -> Evaluation> {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=20).collect::<Vec<i64>>(),
        ));
        cs.add(Hyperparameter::ordinal_ints(
            "P1",
            &(1..=20).collect::<Vec<i64>>(),
        ));
        FnProblem::new(cs, |c| {
            let r = 1.0 + 0.1 * ((c.int("P0") - 17) as f64).powi(2)
                + 0.1 * ((c.int("P1") - 3) as f64).powi(2);
            Evaluation::ok(r, r + 0.5)
        })
        .with_name("toy")
    }

    #[test]
    fn runs_to_budget_and_finds_good_point() {
        let res = run(&problem(), BoOptions::default());
        assert_eq!(res.len(), 100);
        let best = res.best().expect("best");
        assert!(best.runtime_s.expect("ok") < 1.5, "{:?}", best.runtime_s);
    }

    #[test]
    fn elapsed_monotone() {
        let res = run(
            &problem(),
            BoOptions {
                max_evals: 30,
                ..Default::default()
            },
        );
        assert!(res
            .trials
            .windows(2)
            .all(|w| w[0].elapsed_s < w[1].elapsed_s));
        assert!(res.total_process_s >= res.trials.last().expect("trials").elapsed_s);
    }

    #[test]
    fn process_cap_respected() {
        let res = run(
            &problem(),
            BoOptions {
                max_evals: 1000,
                max_process_s: Some(50.0),
                ..Default::default()
            },
        );
        assert!(res.len() < 1000);
        assert!(!res.is_empty());
    }

    #[test]
    fn finite_space_exhausts_cleanly() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3, 4]));
        let p = FnProblem::new(cs, |c| Evaluation::ok(c.int("P0") as f64, 0.1));
        let res = run(
            &p,
            BoOptions {
                max_evals: 100,
                ..Default::default()
            },
        );
        assert_eq!(res.len(), 4);
        assert_eq!(res.best().expect("best").runtime_s, Some(1.0));
    }

    #[test]
    fn parallel_run_matches_budget_and_quality() {
        let p = problem();
        let res = run_parallel(&p, BoOptions::default(), 4);
        assert_eq!(res.len(), 100);
        let best = res.best().expect("best").runtime_s.expect("ok");
        assert!(best < 2.0, "parallel BO should still converge, got {best}");
        // No duplicate proposals across batches.
        let mut keys: Vec<String> = res.trials.iter().map(|t| t.config.key()).collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len());
        // Batch accounting: elapsed is nondecreasing.
        assert!(res
            .trials
            .windows(2)
            .all(|w| w[0].elapsed_s <= w[1].elapsed_s));
    }

    #[test]
    fn parallel_batch_one_equals_sequential_shape() {
        let p = problem();
        let seq = run(
            &p,
            BoOptions {
                max_evals: 20,
                ..Default::default()
            },
        );
        let par = run_parallel(
            &p,
            BoOptions {
                max_evals: 20,
                ..Default::default()
            },
            1,
        );
        // Identical proposal sequence (same seed, batch=1 has no liar
        // effect on the first ask of each round).
        let a: Vec<String> = seq.trials.iter().map(|t| t.config.key()).collect();
        let b: Vec<String> = par.trials.iter().map(|t| t.config.key()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn database_export() {
        let res = run(
            &problem(),
            BoOptions {
                max_evals: 15,
                ..Default::default()
            },
        );
        let db = res.to_database("toy");
        assert_eq!(db.len(), 15);
        assert_eq!(
            db.best().expect("best").runtime_s,
            res.best().expect("best").runtime_s
        );
    }
}
