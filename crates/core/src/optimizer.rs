//! The budgeted optimization loop (steps 1–5 of the paper's framework).
//!
//! Three entry points share one loop: [`run`] (in-memory only),
//! [`run_journaled`] (fresh run, every trial fsync'd to an append-only
//! JSONL journal) and [`resume_from_journal`] (replay a journal's
//! completed trials to warm-start the surrogate, then continue the
//! remaining budget). Because the search is a deterministic function of
//! (seed, history), a killed-and-resumed run follows the identical
//! remaining trajectory as an uninterrupted one.

use crate::database::{DbRecord, PerformanceDatabase};
use crate::fault::{panic_message, MeasureError};
use crate::journal::{divergence_error, pipeline_mismatch_error, TrialJournal, TrialRecord};
use crate::problem::{
    CacheStats, Evaluation, JitStats, ParStats, Problem, PruneStats, SimdStats, StaticCheckStats,
};
use crate::search::{BayesianOptimizer, SearchConfig};
use configspace::Configuration;
use rayon::prelude::*;
use std::path::Path;
use std::time::Instant;

/// Budget and search options.
#[derive(Debug, Clone, Copy)]
pub struct BoOptions {
    /// Maximum evaluations (the paper: 100).
    pub max_evals: usize,
    /// Optional wall-clock cap on the autotuning process, seconds.
    pub max_process_s: Option<f64>,
    /// Search knobs.
    pub search: SearchConfig,
}

impl Default for BoOptions {
    fn default() -> Self {
        BoOptions {
            max_evals: 100,
            max_process_s: None,
            search: SearchConfig::default(),
        }
    }
}

/// One evaluated trial.
#[derive(Debug, Clone)]
pub struct BoTrial {
    /// Evaluation index.
    pub index: usize,
    /// The configuration.
    pub config: Configuration,
    /// Measured runtime.
    pub runtime_s: Option<f64>,
    /// Failure class when the evaluation did not produce a runtime.
    pub error: Option<MeasureError>,
    /// Process time this evaluation consumed.
    pub eval_process_s: f64,
    /// Cumulative process time when the trial finished.
    pub elapsed_s: f64,
}

/// Result of a BO run.
#[derive(Debug, Clone)]
pub struct BoResult {
    /// Trials in evaluation order.
    pub trials: Vec<BoTrial>,
    /// Total autotuning process time (search think time + evaluations).
    pub total_process_s: f64,
    /// Wall-clock spent inside the search itself.
    pub think_s: f64,
    /// How many of the trials were replayed from a journal rather than
    /// evaluated live (0 for fresh runs).
    pub replayed: usize,
    /// Hit/miss counters of the problem's lowering/compilation memo
    /// cache, when it keeps one.
    pub cache: Option<CacheStats>,
    /// Accept/reject counters of the problem's static schedule-safety
    /// analyzer, when it runs one.
    pub static_checks: Option<StaticCheckStats>,
    /// Native-codegen compile counters of the problem's measurement
    /// device, when it runs a JIT rung.
    pub jit: Option<JitStats>,
    /// Multicore-dispatch counters of the problem's measurement device,
    /// when it runs parallel loops on a worker pool.
    pub par: Option<ParStats>,
    /// Packed-SIMD emission counters of the problem's measurement
    /// device, when it runs a vectorizing codegen rung.
    pub simd: Option<SimdStats>,
    /// Batch static-pruning counters of the problem's analyzer pipeline,
    /// when it filters candidates before evaluation (admitted / denied
    /// by stage, with per-code counts).
    pub prune: Option<PruneStats>,
}

impl BoResult {
    /// Best successful trial.
    pub fn best(&self) -> Option<&BoTrial> {
        self.trials
            .iter()
            .filter(|t| t.runtime_s.is_some())
            .min_by(|a, b| {
                a.runtime_s
                    .partial_cmp(&b.runtime_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Number of evaluations.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True when no trial ran.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Number of failed trials.
    pub fn failed(&self) -> usize {
        self.trials.iter().filter(|t| t.runtime_s.is_none()).count()
    }

    /// Export into a [`PerformanceDatabase`].
    pub fn to_database(&self, problem: &str) -> PerformanceDatabase {
        let mut db = PerformanceDatabase::new(problem);
        for t in &self.trials {
            db.push(DbRecord {
                index: t.index,
                config: t.config.clone(),
                runtime_s: t.runtime_s,
                error: t.error.clone(),
                elapsed_s: t.elapsed_s,
            });
        }
        db
    }
}

/// Run Bayesian optimization on `problem` within `opts`' budget.
///
/// Process-time accounting matches the baseline driver in the `autotvm`
/// crate: real surrogate/acquisition wall time plus each evaluation's
/// (possibly simulated) process seconds — the paper's "overall autotuning
/// process time".
pub fn run(problem: &dyn Problem, opts: BoOptions) -> BoResult {
    run_inner(problem, opts, None, Vec::new()).expect("journal-free run cannot do I/O")
}

/// Like [`run`], but write every completed trial to a crash-consistent
/// journal at `path` (truncating any previous journal there).
pub fn run_journaled(
    problem: &dyn Problem,
    opts: BoOptions,
    path: impl AsRef<Path>,
) -> std::io::Result<BoResult> {
    let mut journal = TrialJournal::create(path)?;
    run_inner(problem, opts, Some(&mut journal), Vec::new())
}

/// Resume a (possibly interrupted) journaled run: replay every completed
/// trial from the journal at `path` — warm-starting the surrogate without
/// re-evaluating anything — then continue live until the budget is
/// reached, appending new trials to the same journal.
///
/// Requires the same `opts` (seed included) and the same problem as the
/// original run; a mismatch is detected when the replayed proposals
/// diverge from the journal and reported as `InvalidData`.
pub fn resume_from_journal(
    problem: &dyn Problem,
    opts: BoOptions,
    path: impl AsRef<Path>,
) -> std::io::Result<BoResult> {
    let (mut journal, replay) = TrialJournal::open_resume(path)?;
    run_inner(problem, opts, Some(&mut journal), replay)
}

fn run_inner(
    problem: &dyn Problem,
    opts: BoOptions,
    mut journal: Option<&mut TrialJournal>,
    replay: Vec<TrialRecord>,
) -> std::io::Result<BoResult> {
    let mut bo = BayesianOptimizer::new(problem.space().clone(), opts.search);
    let pipeline = problem.pipeline_fingerprint();
    let mut trials: Vec<BoTrial> = Vec::with_capacity(opts.max_evals);
    let mut elapsed = 0.0f64;
    let mut think = 0.0f64;
    let replay_total = replay.len();
    let mut replay = replay.into_iter();
    let mut replayed = 0usize;

    while trials.len() < opts.max_evals {
        // While replaying, `elapsed` is restored from the journal rather
        // than accumulated live, so the resume process's own think time
        // does not distort the trajectory — and the cap must not fire at
        // a different trial than in the uninterrupted run.
        let replaying = trials.len() < replay_total;
        if !replaying {
            if let Some(cap) = opts.max_process_s {
                if elapsed >= cap {
                    break;
                }
            }
        }
        let t0 = Instant::now();
        let Some(config) = bo.ask() else { break };
        let dt = t0.elapsed().as_secs_f64();
        think += dt;
        if !replaying {
            elapsed += dt;
        }

        let (eval, live) = match replay.next() {
            Some(rec) => {
                if rec.config.key() != config.key() {
                    return Err(divergence_error(
                        trials.len(),
                        &rec.config.key(),
                        &config.key(),
                    ));
                }
                if rec.pipeline != pipeline {
                    return Err(pipeline_mismatch_error(
                        trials.len(),
                        &rec.pipeline,
                        &pipeline,
                    ));
                }
                replayed += 1;
                elapsed = rec.elapsed_s;
                (
                    Evaluation {
                        runtime_s: rec.runtime_s,
                        process_s: rec.eval_process_s,
                        error: rec.error,
                    },
                    false,
                )
            }
            None => {
                // Static filter before evaluation: a denied config is
                // recorded as a zero-cost `static_reject` trial without
                // ever being compiled or measured. Replayed trials above
                // carry their journaled verdicts and skip the analysis.
                let t0 = Instant::now();
                let verdict = problem
                    .prune_batch(std::slice::from_ref(&config))
                    .and_then(|mask| mask.into_iter().next().flatten());
                elapsed += t0.elapsed().as_secs_f64();
                let eval = match verdict {
                    Some(msg) => Evaluation::fail(MeasureError::StaticReject(msg), 0.0),
                    None => problem.evaluate(&config),
                };
                (eval, true)
            }
        };
        if live {
            elapsed += eval.process_s;
        }
        let trial = BoTrial {
            index: trials.len(),
            config: config.clone(),
            runtime_s: eval.runtime_s,
            error: eval.error.clone(),
            eval_process_s: eval.process_s,
            elapsed_s: elapsed,
        };
        if live {
            if let Some(journal) = journal.as_deref_mut() {
                journal.append(&TrialRecord {
                    index: trial.index,
                    config: trial.config.clone(),
                    runtime_s: trial.runtime_s,
                    error: trial.error.clone(),
                    eval_process_s: trial.eval_process_s,
                    elapsed_s: trial.elapsed_s,
                    pipeline: pipeline.clone(),
                })?;
            }
        }
        trials.push(trial);

        let t1 = Instant::now();
        bo.tell(&config, eval.runtime_s);
        let dt = t1.elapsed().as_secs_f64();
        think += dt;
        if !replaying {
            elapsed += dt;
        }
    }

    Ok(BoResult {
        trials,
        total_process_s: elapsed,
        think_s: think,
        replayed,
        cache: problem.cache_stats(),
        static_checks: problem.static_check_stats(),
        jit: problem.jit_stats(),
        par: problem.par_stats(),
        simd: problem.simd_stats(),
        prune: problem.prune_stats(),
    })
}

/// Run Bayesian optimization with **parallel batch evaluation**: each
/// iteration asks for `batch` configurations via the constant-liar
/// strategy and evaluates them concurrently on the rayon thread pool
/// (the problem must be `Sync`).
///
/// This is the asynchronous-evaluation extension of ytopt (the paper's
/// framework evaluates sequentially); process-time accounting charges the
/// *maximum* evaluation time of each batch — the wall-clock a
/// `batch`-wide worker pool would observe — plus the search's own time.
/// Each worker's retries and backoff waits are inside its own
/// `process_s`, so overlapping backoffs are never charged serially.
///
/// A panicking evaluation worker does **not** abort the run: the panic is
/// caught and converted into a failed trial
/// ([`MeasureError::RuntimeCrash`]), and the rest of the batch proceeds.
pub fn run_parallel<P: Problem + Sync>(problem: &P, opts: BoOptions, batch: usize) -> BoResult {
    let batch = batch.max(1);
    let mut bo = BayesianOptimizer::new(problem.space().clone(), opts.search);
    let mut trials: Vec<BoTrial> = Vec::with_capacity(opts.max_evals);
    let mut elapsed = 0.0f64;
    let mut think = 0.0f64;

    while trials.len() < opts.max_evals {
        if let Some(cap) = opts.max_process_s {
            if elapsed >= cap {
                break;
            }
        }
        let want = batch.min(opts.max_evals - trials.len());
        let t0 = Instant::now();
        let configs = bo.ask_batch(want);
        let dt = t0.elapsed().as_secs_f64();
        think += dt;
        elapsed += dt;
        if configs.is_empty() {
            break;
        }

        // Static batch filter before any worker dispatch: denied configs
        // become zero-cost `static_reject` trials and never occupy an
        // evaluation slot.
        let t0 = Instant::now();
        let mask = problem.prune_batch(&configs);
        elapsed += t0.elapsed().as_secs_f64();

        // Evaluate the admitted configs concurrently. Each worker catches
        // its own panic so one crashed evaluation cannot kill the batch.
        let evals: Vec<Evaluation> = configs
            .par_iter()
            .enumerate()
            .map(|(i, cfg)| {
                if let Some(msg) = mask.as_ref().and_then(|m| m.get(i).cloned().flatten()) {
                    return Evaluation::fail(MeasureError::StaticReject(msg), 0.0);
                }
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| problem.evaluate(cfg)))
                    .unwrap_or_else(|payload| {
                        Evaluation::fail(
                            MeasureError::RuntimeCrash(format!(
                                "evaluation worker panicked: {}",
                                panic_message(payload.as_ref())
                            )),
                            0.0,
                        )
                    })
            })
            .collect();

        // A batch-wide pool finishes when its slowest member does.
        let batch_wall = evals.iter().map(|e| e.process_s).fold(0.0f64, f64::max);
        elapsed += batch_wall;

        let t1 = Instant::now();
        for (config, eval) in configs.into_iter().zip(evals) {
            trials.push(BoTrial {
                index: trials.len(),
                config: config.clone(),
                runtime_s: eval.runtime_s,
                error: eval.error.clone(),
                eval_process_s: eval.process_s,
                elapsed_s: elapsed,
            });
            bo.tell(&config, eval.runtime_s);
        }
        let dt = t1.elapsed().as_secs_f64();
        think += dt;
        elapsed += dt;
    }

    BoResult {
        trials,
        total_process_s: elapsed,
        think_s: think,
        replayed: 0,
        cache: problem.cache_stats(),
        static_checks: problem.static_check_stats(),
        jit: problem.jit_stats(),
        par: problem.par_stats(),
        simd: problem.simd_stats(),
        prune: problem.prune_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Evaluation, FnProblem};
    use configspace::{ConfigSpace, Hyperparameter};

    fn problem() -> FnProblem<impl Fn(&Configuration) -> Evaluation> {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=20).collect::<Vec<i64>>(),
        ));
        cs.add(Hyperparameter::ordinal_ints(
            "P1",
            &(1..=20).collect::<Vec<i64>>(),
        ));
        FnProblem::new(cs, |c| {
            let r = 1.0
                + 0.1 * ((c.int("P0") - 17) as f64).powi(2)
                + 0.1 * ((c.int("P1") - 3) as f64).powi(2);
            Evaluation::ok(r, r + 0.5)
        })
        .with_name("toy")
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ytopt-bo-optimizer-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn runs_to_budget_and_finds_good_point() {
        let res = run(&problem(), BoOptions::default());
        assert_eq!(res.len(), 100);
        let best = res.best().expect("best");
        assert!(best.runtime_s.expect("ok") < 1.5, "{:?}", best.runtime_s);
    }

    #[test]
    fn elapsed_monotone() {
        let res = run(
            &problem(),
            BoOptions {
                max_evals: 30,
                ..Default::default()
            },
        );
        assert!(res
            .trials
            .windows(2)
            .all(|w| w[0].elapsed_s < w[1].elapsed_s));
        assert!(res.total_process_s >= res.trials.last().expect("trials").elapsed_s);
    }

    #[test]
    fn process_cap_respected() {
        let res = run(
            &problem(),
            BoOptions {
                max_evals: 1000,
                max_process_s: Some(50.0),
                ..Default::default()
            },
        );
        assert!(res.len() < 1000);
        assert!(!res.is_empty());
    }

    #[test]
    fn finite_space_exhausts_cleanly() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3, 4]));
        let p = FnProblem::new(cs, |c| Evaluation::ok(c.int("P0") as f64, 0.1));
        let res = run(
            &p,
            BoOptions {
                max_evals: 100,
                ..Default::default()
            },
        );
        assert_eq!(res.len(), 4);
        assert_eq!(res.best().expect("best").runtime_s, Some(1.0));
    }

    #[test]
    fn parallel_run_matches_budget_and_quality() {
        let p = problem();
        let res = run_parallel(&p, BoOptions::default(), 4);
        assert_eq!(res.len(), 100);
        let best = res.best().expect("best").runtime_s.expect("ok");
        assert!(best < 2.0, "parallel BO should still converge, got {best}");
        // No duplicate proposals across batches.
        let mut keys: Vec<String> = res.trials.iter().map(|t| t.config.key()).collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len());
        // Batch accounting: elapsed is nondecreasing.
        assert!(res
            .trials
            .windows(2)
            .all(|w| w[0].elapsed_s <= w[1].elapsed_s));
    }

    #[test]
    fn parallel_batch_one_equals_sequential_shape() {
        let p = problem();
        let seq = run(
            &p,
            BoOptions {
                max_evals: 20,
                ..Default::default()
            },
        );
        let par = run_parallel(
            &p,
            BoOptions {
                max_evals: 20,
                ..Default::default()
            },
            1,
        );
        // Identical proposal sequence (same seed, batch=1 has no liar
        // effect on the first ask of each round).
        let a: Vec<String> = seq.trials.iter().map(|t| t.config.key()).collect();
        let b: Vec<String> = par.trials.iter().map(|t| t.config.key()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_worker_panic_becomes_failed_trial() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=20).collect::<Vec<i64>>(),
        ));
        let p = FnProblem::new(cs, |c| {
            if c.int("P0") % 3 == 0 {
                panic!("injected worker panic at P0={}", c.int("P0"));
            }
            Evaluation::ok(c.int("P0") as f64, 0.1)
        });
        let res = run_parallel(
            &p,
            BoOptions {
                max_evals: 20,
                ..Default::default()
            },
            4,
        );
        // The run survives the panics, completes the space, and records
        // the crashed evaluations as failed trials.
        assert_eq!(res.len(), 20);
        assert_eq!(res.failed(), 6, "P0 ∈ {{3,6,9,12,15,18}} crash");
        for t in &res.trials {
            if t.config.int("P0") % 3 == 0 {
                assert!(t.runtime_s.is_none());
                let err = t.error.as_ref().expect("crash recorded");
                assert_eq!(err.kind(), "runtime_crash");
                assert!(err.message().contains("injected worker panic"));
            } else {
                assert!(t.runtime_s.is_some());
            }
        }
        assert_eq!(res.best().expect("best").runtime_s, Some(1.0));
    }

    #[test]
    fn parallel_batch_charges_max_not_sum() {
        // Every evaluation charges a full second of (simulated) process
        // time — attempts plus backoff waits. Overlapping workers must be
        // charged the batch *maximum*, not the serial sum.
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints(
            "P0",
            &(1..=10).collect::<Vec<i64>>(),
        ));
        let p = FnProblem::new(cs, |c| Evaluation::ok(c.int("P0") as f64, 1.0));
        let res = run_parallel(
            &p,
            BoOptions {
                max_evals: 10,
                ..Default::default()
            },
            5,
        );
        assert_eq!(res.len(), 10);
        // Per-worker accounting is preserved on each trial…
        assert!(res.trials.iter().all(|t| t.eval_process_s == 1.0));
        // …but the run is charged two 5-wide rounds, not ten serial evals.
        assert!(
            res.total_process_s < 3.0,
            "expected ~2 s of batch wall, got {}",
            res.total_process_s
        );
        assert!(res.total_process_s >= 2.0);
    }

    #[test]
    fn cache_stats_surface_in_result() {
        use crate::problem::CacheStats;

        struct CachingProblem {
            space: ConfigSpace,
        }
        impl Problem for CachingProblem {
            fn space(&self) -> &ConfigSpace {
                &self.space
            }
            fn evaluate(&self, c: &Configuration) -> Evaluation {
                Evaluation::ok(c.int("P0") as f64, 0.1)
            }
            fn cache_stats(&self) -> Option<CacheStats> {
                Some(CacheStats { hits: 3, misses: 4 })
            }
        }

        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3]));
        let res = run(
            &CachingProblem { space: cs },
            BoOptions {
                max_evals: 3,
                ..Default::default()
            },
        );
        let cache = res.cache.expect("caching problem reports stats");
        assert_eq!(cache.total(), 7);
        assert!((cache.hit_rate() - 3.0 / 7.0).abs() < 1e-12);
        // Cacheless problems report nothing.
        assert!(run(
            &problem(),
            BoOptions {
                max_evals: 2,
                ..Default::default()
            }
        )
        .cache
        .is_none());
    }

    #[test]
    fn database_export() {
        let res = run(
            &problem(),
            BoOptions {
                max_evals: 15,
                ..Default::default()
            },
        );
        let db = res.to_database("toy");
        assert_eq!(db.len(), 15);
        assert_eq!(
            db.best().expect("best").runtime_s,
            res.best().expect("best").runtime_s
        );
    }

    #[test]
    fn journaled_run_roundtrips_and_resume_is_identical() {
        let path = tmp("resume-identical.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = BoOptions {
            max_evals: 30,
            ..Default::default()
        };
        let p = problem();

        // Reference: uninterrupted run.
        let full = run(&p, opts);

        // Interrupted run: stop after 12 trials, then resume to budget.
        let partial = run_journaled(
            &p,
            BoOptions {
                max_evals: 12,
                ..opts
            },
            &path,
        )
        .expect("journaled run");
        assert_eq!(partial.len(), 12);
        assert_eq!(TrialJournal::load(&path).expect("load").len(), 12);

        let resumed = resume_from_journal(&p, opts, &path).expect("resume");
        assert_eq!(resumed.len(), 30);
        assert_eq!(resumed.replayed, 12);
        assert_eq!(TrialJournal::load(&path).expect("load").len(), 30);

        let keys =
            |r: &BoResult| -> Vec<String> { r.trials.iter().map(|t| t.config.key()).collect() };
        assert_eq!(keys(&full), keys(&resumed), "identical trajectory");
        assert_eq!(
            full.best().expect("best").config.key(),
            resumed.best().expect("best").config.key(),
            "identical final best configuration"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_wrong_seed_reports_divergence() {
        let path = tmp("resume-diverges.jsonl");
        let _ = std::fs::remove_file(&path);
        let p = problem();
        let opts = BoOptions {
            max_evals: 8,
            ..Default::default()
        };
        run_journaled(&p, opts, &path).expect("journaled run");
        let wrong = BoOptions {
            max_evals: 16,
            search: SearchConfig {
                seed: 999,
                ..Default::default()
            },
            ..Default::default()
        };
        let err = resume_from_journal(&p, wrong, &path).expect_err("must diverge");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_under_changed_pipeline_is_refused() {
        struct VersionedProblem {
            space: ConfigSpace,
            version: &'static str,
        }
        impl Problem for VersionedProblem {
            fn space(&self) -> &ConfigSpace {
                &self.space
            }
            fn evaluate(&self, c: &Configuration) -> Evaluation {
                Evaluation::ok(c.int("P0") as f64, 0.1)
            }
            fn pipeline_fingerprint(&self) -> Option<String> {
                Some(self.version.to_string())
            }
        }
        let space = || {
            let mut cs = ConfigSpace::new();
            cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2, 3, 4]));
            cs
        };
        let path = tmp("resume-pipeline.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = BoOptions {
            max_evals: 4,
            ..Default::default()
        };
        let v1 = VersionedProblem {
            space: space(),
            version: "tir-opt/v1",
        };
        run_journaled(&v1, opts, &path).expect("journaled run");
        // Same seed and options, but the engine changed: the stale costs
        // must not be replayed.
        let v2 = VersionedProblem {
            space: space(),
            version: "tir-opt/v2",
        };
        let err = resume_from_journal(
            &v2,
            BoOptions {
                max_evals: 8,
                ..opts
            },
            &path,
        )
        .expect_err("pipeline change must refuse resume");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("pipeline"), "{err}");
        // The unchanged pipeline still resumes cleanly.
        let resumed = resume_from_journal(
            &v1,
            BoOptions {
                max_evals: 8,
                ..opts
            },
            &path,
        )
        .expect("same pipeline resumes");
        assert_eq!(resumed.replayed, 4);
        let _ = std::fs::remove_file(&path);
    }
}
