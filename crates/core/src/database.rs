//! The performance database: every evaluated configuration with its
//! runtime, queryable for the best result (ytopt's `results.csv`).

use crate::fault::MeasureError;
use configspace::Configuration;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One database row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbRecord {
    /// Evaluation index.
    pub index: usize,
    /// The configuration.
    pub config: Configuration,
    /// Runtime in seconds (`None` on failure).
    pub runtime_s: Option<f64>,
    /// Failure class, when the evaluation failed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<MeasureError>,
    /// Cumulative process time at completion.
    pub elapsed_s: f64,
}

/// In-memory performance database with JSON and CSV persistence.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerformanceDatabase {
    /// Problem name.
    pub problem: String,
    /// All records, in evaluation order.
    pub records: Vec<DbRecord>,
}

impl PerformanceDatabase {
    /// Empty database for a problem.
    pub fn new(problem: impl Into<String>) -> PerformanceDatabase {
        PerformanceDatabase {
            problem: problem.into(),
            records: Vec::new(),
        }
    }

    /// Append one record.
    pub fn push(&mut self, record: DbRecord) {
        self.records.push(record);
    }

    /// Best successful record ("we query the performance database to
    /// output the optimization specification for the best configuration").
    pub fn best(&self) -> Option<&DbRecord> {
        self.records
            .iter()
            .filter(|r| r.runtime_s.is_some())
            .min_by(|a, b| {
                a.runtime_s
                    .partial_cmp(&b.runtime_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Save as pretty JSON.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        let s = serde_json::to_string_pretty(self).expect("database serializes");
        std::fs::write(path, s)
    }

    /// Load from JSON.
    pub fn load_json(path: &Path) -> std::io::Result<PerformanceDatabase> {
        let s = std::fs::read_to_string(path)?;
        serde_json::from_str(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Save as a ytopt-style `results.csv` (param columns, objective,
    /// elapsed).
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let names: Vec<String> = self
            .records
            .first()
            .map(|r| r.config.names.clone())
            .unwrap_or_default();
        writeln!(f, "{},objective,elapsed_sec", names.join(","))?;
        for r in &self.records {
            let vals: Vec<String> = r.config.values.iter().map(|v| v.to_string()).collect();
            let obj = r
                .runtime_s
                .map(|t| format!("{t}"))
                .unwrap_or_else(|| "inf".into());
            writeln!(f, "{},{},{}", vals.join(","), obj, r.elapsed_s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::ParamValue;

    fn rec(i: usize, rt: Option<f64>) -> DbRecord {
        DbRecord {
            index: i,
            config: Configuration::new(
                vec!["P0".into(), "P1".into()],
                vec![ParamValue::Int(i as i64), ParamValue::Int(2)],
            ),
            runtime_s: rt,
            error: rt
                .is_none()
                .then(|| MeasureError::Transient("injected".into())),
            elapsed_s: i as f64 * 2.0,
        }
    }

    #[test]
    fn best_skips_failures() {
        let mut db = PerformanceDatabase::new("lu");
        db.push(rec(0, None));
        db.push(rec(1, Some(3.0)));
        db.push(rec(2, Some(1.5)));
        assert_eq!(db.best().expect("best").index, 2);
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn json_roundtrip() {
        let mut db = PerformanceDatabase::new("lu");
        db.push(rec(0, Some(2.0)));
        let dir = std::env::temp_dir().join("ytopt-bo-db-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.json");
        db.save_json(&path).expect("save");
        let back = PerformanceDatabase::load_json(&path).expect("load");
        assert_eq!(back.problem, "lu");
        assert_eq!(back.records, db.records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut db = PerformanceDatabase::new("lu");
        db.push(rec(0, Some(2.0)));
        db.push(rec(1, None));
        let dir = std::env::temp_dir().join("ytopt-bo-db-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("results.csv");
        db.save_csv(&path).expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "P0,P1,objective,elapsed_sec");
        assert!(lines[2].contains("inf"));
        let _ = std::fs::remove_file(&path);
    }
}
