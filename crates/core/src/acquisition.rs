//! Acquisition functions over the surrogate's (mean, std) prediction.
//!
//! All scores are *minimized* (the tuning metric is runtime).

/// Acquisition strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Lower confidence bound `μ − κ·σ` — ytopt's choice; `κ` trades
    /// exploration (large) against exploitation (small).
    Lcb {
        /// Exploration weight (ytopt default 1.96).
        kappa: f64,
    },
    /// Negative expected improvement over the incumbent.
    Ei,
    /// Negative probability of improvement over the incumbent.
    Pi,
}

impl Default for Acquisition {
    fn default() -> Self {
        Acquisition::Lcb { kappa: 1.96 }
    }
}

/// Standard normal PDF.
fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 polynomial, |err| < 1.5e-7).
fn big_phi(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf_abs = 1.0 - poly * (-(x / std::f64::consts::SQRT_2).powi(2)).exp();
    let erf = if x >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

impl Acquisition {
    /// Score a candidate (lower is better) given the surrogate prediction
    /// and the best runtime observed so far.
    pub fn score(&self, mean: f64, std: f64, best: f64) -> f64 {
        match *self {
            Acquisition::Lcb { kappa } => mean - kappa * std,
            Acquisition::Ei => {
                if std <= 1e-12 {
                    // No uncertainty: improvement is deterministic.
                    return -(best - mean).max(0.0);
                }
                let z = (best - mean) / std;
                let ei = (best - mean) * big_phi(z) + std * phi(z);
                -ei
            }
            Acquisition::Pi => {
                if std <= 1e-12 {
                    return if mean < best { -1.0 } else { 0.0 };
                }
                let z = (best - mean) / std;
                -big_phi(z)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_sane() {
        assert!((big_phi(0.0) - 0.5).abs() < 1e-7);
        assert!((big_phi(1.96) - 0.975).abs() < 1e-3);
        assert!((big_phi(-1.96) - 0.025).abs() < 1e-3);
        assert!(big_phi(8.0) > 0.999999);
    }

    #[test]
    fn lcb_prefers_low_mean_and_high_std() {
        let a = Acquisition::Lcb { kappa: 2.0 };
        // Lower mean wins at equal std.
        assert!(a.score(1.0, 0.1, 2.0) < a.score(2.0, 0.1, 2.0));
        // Higher std wins at equal mean (exploration).
        assert!(a.score(1.0, 0.5, 2.0) < a.score(1.0, 0.1, 2.0));
    }

    #[test]
    fn kappa_zero_is_pure_exploitation() {
        let a = Acquisition::Lcb { kappa: 0.0 };
        assert_eq!(a.score(1.5, 10.0, 0.0), 1.5);
    }

    #[test]
    fn ei_prefers_likely_improvements() {
        let a = Acquisition::Ei;
        let good = a.score(0.5, 0.2, 1.0); // predicted well below incumbent
        let bad = a.score(2.0, 0.2, 1.0); // predicted well above
        assert!(good < bad);
        // EI of a hopeless point approaches zero.
        assert!(a.score(10.0, 0.01, 1.0).abs() < 1e-9);
    }

    #[test]
    fn pi_bounded_in_minus_one_zero() {
        let a = Acquisition::Pi;
        for (m, s) in [(0.1, 0.5), (5.0, 0.5), (1.0, 0.0)] {
            let v = a.score(m, s, 1.0);
            assert!((-1.0..=0.0).contains(&v), "score {v}");
        }
    }

    #[test]
    fn zero_std_cases() {
        assert_eq!(Acquisition::Ei.score(0.5, 0.0, 1.0), -0.5);
        assert_eq!(Acquisition::Ei.score(1.5, 0.0, 1.0), 0.0);
        assert_eq!(Acquisition::Pi.score(0.5, 0.0, 1.0), -1.0);
        assert_eq!(Acquisition::Pi.score(1.5, 0.0, 1.0), 0.0);
    }
}
