//! Problem definition: what the optimizer tunes.

use crate::fault::MeasureError;
use configspace::{ConfigSpace, Configuration};
use serde::{Deserialize, Serialize};

/// Outcome of evaluating one configuration (step 4–5 of the paper's
/// iterative phase).
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The user-defined metric — application runtime in seconds
    /// (`None` on failure).
    pub runtime_s: Option<f64>,
    /// Wall-clock consumed by this evaluation (compile + execute).
    pub process_s: f64,
    /// Structured failure, if any.
    pub error: Option<MeasureError>,
}

impl Evaluation {
    /// Successful evaluation.
    pub fn ok(runtime_s: f64, process_s: f64) -> Evaluation {
        Evaluation {
            runtime_s: Some(runtime_s),
            process_s,
            error: None,
        }
    }

    /// Failed evaluation. Accepts a [`MeasureError`] directly or any
    /// string-ish message (classified into the taxonomy).
    pub fn fail(error: impl Into<MeasureError>, process_s: f64) -> Evaluation {
        Evaluation {
            runtime_s: None,
            process_s,
            error: Some(error.into()),
        }
    }

    /// True when the evaluation produced a runtime.
    pub fn is_ok(&self) -> bool {
        self.runtime_s.is_some()
    }
}

/// Hit/miss counters of an evaluator-side memo cache (lowering /
/// compilation artifacts reused across repeated proposals).
/// Serializable so the tuning service can report aggregate counters
/// through its status endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Evaluations served from the cache (no re-lowering, no rebuild).
    pub hits: u64,
    /// Evaluations that had to lower and build from scratch.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// Accept/reject counters of an evaluator-side static schedule-safety
/// analyzer (configs vetted before any compilation or measurement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticCheckStats {
    /// Configurations the analyzer proved safe to measure.
    pub accepted: u64,
    /// Configurations rejected before compilation (`Deny` findings).
    pub rejected: u64,
}

impl StaticCheckStats {
    /// Total analyzed configurations.
    pub fn total(&self) -> u64 {
        self.accepted + self.rejected
    }

    /// Fraction of analyzed configurations rejected statically (0 when
    /// nothing was analyzed).
    pub fn reject_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.rejected as f64 / self.total() as f64
        }
    }
}

/// Native-codegen compile counters of an evaluator-side JIT rung.
/// Mirrors the runtime's JIT accounting in a serializable form so the
/// tuning service can report it through its status endpoint: how many
/// functions reached machine code, how many declined into the bytecode
/// VM, and why.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JitStats {
    /// Functions fully compiled to native code.
    pub functions_jitted: u64,
    /// Loop nests emitted as machine code across those functions.
    pub nests_compiled: u64,
    /// Total bytes of executable code emitted.
    pub bytes_emitted: u64,
    /// Functions that fell back to the bytecode VM.
    pub fallbacks: u64,
    /// Fallback reasons with occurrence counts, sorted by reason.
    pub fallback_reasons: Vec<(String, u64)>,
}

impl JitStats {
    /// Total compile attempts (jitted + fallbacks).
    pub fn attempts(&self) -> u64 {
        self.functions_jitted + self.fallbacks
    }

    /// Fraction of compile attempts that reached native code (0 when
    /// nothing was attempted).
    pub fn jit_rate(&self) -> f64 {
        if self.attempts() == 0 {
            0.0
        } else {
            self.functions_jitted as f64 / self.attempts() as f64
        }
    }

    /// Fold `other` into `self` (used by the service to aggregate the
    /// per-session counters into one status line). Fallback reasons are
    /// merged by reason and kept sorted.
    pub fn merge(&mut self, other: &JitStats) {
        self.functions_jitted += other.functions_jitted;
        self.nests_compiled += other.nests_compiled;
        self.bytes_emitted += other.bytes_emitted;
        self.fallbacks += other.fallbacks;
        for (reason, n) in &other.fallback_reasons {
            match self.fallback_reasons.iter_mut().find(|(r, _)| r == reason) {
                Some((_, count)) => *count += n,
                None => self.fallback_reasons.push((reason.clone(), *n)),
            }
        }
        self.fallback_reasons.sort();
    }
}

/// Multicore-dispatch counters of an evaluator-side parallel execution
/// layer. Mirrors the runtime's worker-pool accounting in a
/// serializable form: how many parallel loops carried a race-freedom
/// proof, how often proven loops actually dispatched on the pool, and
/// why the remainder ran sequentially.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParStats {
    /// Parallel loops carrying a race-freedom proof across all prepared
    /// functions.
    pub loops_proven: u64,
    /// Parallel loops without a proof (always run sequentially).
    pub loops_unproven: u64,
    /// Worker-pool dispatches of proven loops at execution time.
    pub dispatches: u64,
    /// Sequential executions a parallel loop fell back to.
    pub fallbacks: u64,
    /// Fallback reasons with occurrence counts, sorted by reason.
    pub fallback_reasons: Vec<(String, u64)>,
    /// Thread budget the pool is configured for.
    pub pool_threads: u64,
    /// Threads the process-wide pool has ever spawned (monotonic; pool
    /// reuse means steady-state trials do not move it).
    pub threads_spawned: u64,
}

impl ParStats {
    /// Fraction of runtime parallel-loop entries that dispatched on the
    /// pool (0 when no parallel loop ever executed).
    pub fn dispatch_rate(&self) -> f64 {
        let entries = self.dispatches + self.fallbacks;
        if entries == 0 {
            0.0
        } else {
            self.dispatches as f64 / entries as f64
        }
    }

    /// Fold `other` into `self` (counter-wise sums; reasons merged by
    /// name and kept sorted; pool facts are process-global, so take the
    /// max).
    pub fn merge(&mut self, other: &ParStats) {
        self.loops_proven += other.loops_proven;
        self.loops_unproven += other.loops_unproven;
        self.dispatches += other.dispatches;
        self.fallbacks += other.fallbacks;
        for (reason, n) in &other.fallback_reasons {
            match self.fallback_reasons.iter_mut().find(|(r, _)| r == reason) {
                Some((_, count)) => *count += n,
                None => self.fallback_reasons.push((reason.clone(), *n)),
            }
        }
        self.fallback_reasons.sort();
        self.pool_threads = self.pool_threads.max(other.pool_threads);
        self.threads_spawned = self.threads_spawned.max(other.threads_spawned);
    }
}

/// Packed-SIMD emission counters of an evaluator-side native codegen
/// rung. Mirrors the runtime's vectorizer accounting in a serializable
/// form: how many vector sites (innermost strided / mul-add loops in
/// jitted nests) were emitted packed, how many of those got the
/// register-tiled microkernel, how many stayed scalar and why, and the
/// lane widths the backend emits at. Packed + scalar partitions every
/// vector site: `packed_loops + scalar_loops == sites()`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimdStats {
    /// Vector sites emitted with packed lanes.
    pub packed_loops: u64,
    /// Subset of `packed_loops` that used the register-tiled
    /// (accumulator-blocked) mul-add microkernel.
    pub tiled_loops: u64,
    /// Vector sites emitted scalar.
    pub scalar_loops: u64,
    /// Elements per packed `f64` operation (2 for SSE2, 4 for AVX; 1
    /// when packed emission is off).
    pub f64_lanes: u64,
    /// Elements per packed `f32` operation (4 for SSE2, 8 for AVX; 1
    /// when packed emission is off).
    pub f32_lanes: u64,
    /// Scalar-fallback reasons with occurrence counts, sorted by reason.
    pub scalar_reasons: Vec<(String, u64)>,
}

impl SimdStats {
    /// Total vector sites seen (packed + scalar).
    pub fn sites(&self) -> u64 {
        self.packed_loops + self.scalar_loops
    }

    /// Fraction of vector sites emitted packed (0 when no site was
    /// compiled).
    pub fn packed_rate(&self) -> f64 {
        if self.sites() == 0 {
            0.0
        } else {
            self.packed_loops as f64 / self.sites() as f64
        }
    }

    /// Fold `other` into `self` (counter-wise sums; reasons merged by
    /// name and kept sorted; lane widths are backend facts, so take the
    /// max across rungs — scalar rungs report 1).
    pub fn merge(&mut self, other: &SimdStats) {
        self.packed_loops += other.packed_loops;
        self.tiled_loops += other.tiled_loops;
        self.scalar_loops += other.scalar_loops;
        for (reason, n) in &other.scalar_reasons {
            match self.scalar_reasons.iter_mut().find(|(r, _)| r == reason) {
                Some((_, count)) => *count += n,
                None => self.scalar_reasons.push((reason.clone(), *n)),
            }
        }
        self.scalar_reasons.sort();
        self.f64_lanes = self.f64_lanes.max(other.f64_lanes);
        self.f32_lanes = self.f32_lanes.max(other.f32_lanes);
    }
}

/// Batch static-pruning counters of an evaluator-side analyzer pipeline:
/// how many candidate configurations were admitted to compilation and
/// measurement, how many were cut by the pre-lowering legality prelint
/// (never instantiated), how many by the full analyzer, and under which
/// stable diagnostic codes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Candidates admitted to compile/measure.
    pub admitted: u64,
    /// Candidates denied by the schedule legality prelint.
    pub prelint_denied: u64,
    /// Candidates denied by the analyzer on the instantiated function.
    pub analyzer_denied: u64,
    /// Denial counts per stable diagnostic code, sorted by code.
    pub denied_by_code: Vec<(String, u64)>,
}

impl PruneStats {
    /// Total candidates examined.
    pub fn total(&self) -> u64 {
        self.admitted + self.prelint_denied + self.analyzer_denied
    }

    /// Fraction of candidates denied statically (0 when nothing was
    /// examined).
    pub fn deny_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.prelint_denied + self.analyzer_denied) as f64 / self.total() as f64
        }
    }

    /// Fold `other` into `self` (counter-wise sums; per-code counts
    /// merged by code and kept sorted).
    pub fn merge(&mut self, other: &PruneStats) {
        self.admitted += other.admitted;
        self.prelint_denied += other.prelint_denied;
        self.analyzer_denied += other.analyzer_denied;
        for (code, n) in &other.denied_by_code {
            match self.denied_by_code.iter_mut().find(|(c, _)| c == code) {
                Some((_, count)) => *count += n,
                None => self.denied_by_code.push((code.clone(), *n)),
            }
        }
        self.denied_by_code.sort();
    }
}

/// A tuning problem: the parameter space plus the user-defined evaluation
/// interface (the paper's "code mold + interface" pair).
pub trait Problem {
    /// The tunable parameter space.
    fn space(&self) -> &ConfigSpace;

    /// Evaluate one configuration end to end.
    fn evaluate(&self, config: &Configuration) -> Evaluation;

    /// Optional problem name for records.
    fn name(&self) -> &str {
        "problem"
    }

    /// Counters of this problem's lowering/compilation memo cache, if it
    /// keeps one (`None` for cacheless problems). Snapshotted into
    /// [`crate::optimizer::BoResult::cache`] at the end of a run.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Accept/reject counters of this problem's static schedule-safety
    /// analyzer, if it runs one (`None` for unanalyzed problems).
    /// Snapshotted into [`crate::optimizer::BoResult::static_checks`] at
    /// the end of a run.
    fn static_check_stats(&self) -> Option<StaticCheckStats> {
        None
    }

    /// Fingerprint of the compilation/optimization pipeline behind this
    /// problem's measurements (`None` when measurements do not depend on
    /// a compiler). Stamped into every journal record so a resumed run
    /// refuses to replay costs measured under a different pipeline.
    fn pipeline_fingerprint(&self) -> Option<String> {
        None
    }

    /// Native-codegen compile counters of this problem's measurement
    /// device, if it runs a JIT rung (`None` otherwise). Snapshotted
    /// alongside [`Problem::cache_stats`] at the end of a run.
    fn jit_stats(&self) -> Option<JitStats> {
        None
    }

    /// Multicore-dispatch counters of this problem's measurement device,
    /// if it runs parallel loops on a worker pool (`None` otherwise).
    /// Snapshotted alongside [`Problem::jit_stats`] at the end of a run.
    fn par_stats(&self) -> Option<ParStats> {
        None
    }

    /// Packed-SIMD emission counters of this problem's measurement
    /// device, if it runs a vectorizing codegen rung (`None`
    /// otherwise). Snapshotted alongside [`Problem::jit_stats`] at the
    /// end of a run.
    fn simd_stats(&self) -> Option<SimdStats> {
        None
    }

    /// Statically filter a batch of candidates before evaluation, if
    /// this problem runs an analyzer pipeline (`None` otherwise). The
    /// mask has one slot per candidate: `None` admits it to evaluation,
    /// `Some(message)` is the `static_reject` error the optimizer
    /// records without evaluating — byte-identical to the message
    /// `evaluate` would have produced, so journaled trial streams do not
    /// depend on whether a batch was pre-filtered.
    fn prune_batch(&self, _batch: &[Configuration]) -> Option<Vec<Option<String>>> {
        None
    }

    /// Batch static-pruning counters of this problem's analyzer
    /// pipeline, if it filters candidate batches before measurement
    /// (`None` for problems without a pruner). Snapshotted into
    /// [`crate::optimizer::BoResult::prune`] at the end of a run.
    fn prune_stats(&self) -> Option<PruneStats> {
        None
    }
}

/// Closure-backed problem, for custom kernels and tests.
pub struct FnProblem<F: Fn(&Configuration) -> Evaluation> {
    space: ConfigSpace,
    name: String,
    f: F,
}

impl<F: Fn(&Configuration) -> Evaluation> FnProblem<F> {
    /// Wrap a closure over a space.
    pub fn new(space: ConfigSpace, f: F) -> Self {
        FnProblem {
            space,
            name: "fn-problem".into(),
            f,
        }
    }

    /// Builder: set the problem name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl<F: Fn(&Configuration) -> Evaluation> Problem for FnProblem<F> {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn evaluate(&self, config: &Configuration) -> Evaluation {
        (self.f)(config)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use configspace::Hyperparameter;

    #[test]
    fn evaluation_constructors() {
        let e = Evaluation::ok(2.0, 3.0);
        assert_eq!(e.runtime_s, Some(2.0));
        assert!(e.error.is_none());
        let f = Evaluation::fail("oom", 1.0);
        assert!(f.runtime_s.is_none());
        assert_eq!(f.error.as_ref().map(|e| e.message()), Some("oom"));
        let t = Evaluation::fail(
            MeasureError::Timeout {
                limit_s: 2.0,
                message: None,
            },
            2.0,
        );
        assert_eq!(t.error.as_ref().map(|e| e.kind()), Some("timeout"));
    }

    #[test]
    fn jit_stats_rates() {
        let s = JitStats::default();
        assert_eq!(s.attempts(), 0);
        assert_eq!(s.jit_rate(), 0.0);
        let s = JitStats {
            functions_jitted: 3,
            nests_compiled: 5,
            bytes_emitted: 4096,
            fallbacks: 1,
            fallback_reasons: vec![("float op Max".into(), 1)],
        };
        assert_eq!(s.attempts(), 4);
        assert!((s.jit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn jit_stats_merge_sums_counters_and_reasons() {
        let mut a = JitStats {
            functions_jitted: 2,
            nests_compiled: 4,
            bytes_emitted: 1000,
            fallbacks: 1,
            fallback_reasons: vec![("float op Max".into(), 1)],
        };
        let b = JitStats {
            functions_jitted: 1,
            nests_compiled: 1,
            bytes_emitted: 200,
            fallbacks: 3,
            fallback_reasons: vec![("float op Max".into(), 2), ("int buffer".into(), 1)],
        };
        a.merge(&b);
        assert_eq!(a.functions_jitted, 3);
        assert_eq!(a.nests_compiled, 5);
        assert_eq!(a.bytes_emitted, 1200);
        assert_eq!(a.fallbacks, 4);
        assert_eq!(
            a.fallback_reasons,
            vec![("float op Max".to_string(), 3), ("int buffer".to_string(), 1)]
        );
        let mut empty = JitStats::default();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn static_check_stats_rates() {
        let s = StaticCheckStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.reject_rate(), 0.0);
        let s = StaticCheckStats {
            accepted: 3,
            rejected: 1,
        };
        assert_eq!(s.total(), 4);
        assert!((s.reject_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn prune_stats_rates_and_merge() {
        let s = PruneStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.deny_rate(), 0.0);
        let mut a = PruneStats {
            admitted: 6,
            prelint_denied: 1,
            analyzer_denied: 1,
            denied_by_code: vec![("TIR-RACE-WW".into(), 1), ("TIR-TRIP-ZERO".into(), 1)],
        };
        assert_eq!(a.total(), 8);
        assert!((a.deny_rate() - 0.25).abs() < 1e-12);
        let b = PruneStats {
            admitted: 2,
            prelint_denied: 2,
            analyzer_denied: 0,
            denied_by_code: vec![("TIR-TRIP-ZERO".into(), 1), ("TIR-VEC-OVER".into(), 1)],
        };
        a.merge(&b);
        assert_eq!(a.admitted, 8);
        assert_eq!(a.prelint_denied, 3);
        assert_eq!(
            a.denied_by_code,
            vec![
                ("TIR-RACE-WW".to_string(), 1),
                ("TIR-TRIP-ZERO".to_string(), 2),
                ("TIR-VEC-OVER".to_string(), 1)
            ]
        );
    }

    #[test]
    fn fn_problem() {
        let mut cs = ConfigSpace::new();
        cs.add(Hyperparameter::ordinal_ints("P0", &[1, 2]));
        let p = FnProblem::new(cs, |c| Evaluation::ok(c.int("P0") as f64, 0.0)).with_name("toy");
        assert_eq!(p.name(), "toy");
        let c = p.space().at(1);
        assert_eq!(p.evaluate(&c).runtime_s, Some(2.0));
    }
}
