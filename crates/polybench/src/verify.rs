//! Numerical verification of mold configurations against the reference
//! implementations.

use crate::molds::CodeMold;
use configspace::Configuration;
use tvm_runtime::interp::execute;

/// Instantiate `mold` at `config`, execute on the CPU interpreter, and
/// compare every output against the reference implementation.
///
/// Returns `Err` with a human-readable reason on any mismatch — used by
/// tests, the quickstart example, and spot-check sampling in the tuning
/// integration tests.
pub fn verify_config(mold: &dyn CodeMold, config: &Configuration, rtol: f64) -> Result<(), String> {
    let func = mold.instantiate(config);
    let mut args = mold.init_args();
    execute(&func, &mut args).map_err(|e| format!("execution failed: {e}"))?;
    let expects = mold.reference_args();
    assert_eq!(
        args.len(),
        expects.len(),
        "mold arg/reference length mismatch"
    );
    for (i, expect) in expects.iter().enumerate() {
        if let Some(e) = expect {
            if !args[i].allclose(e, rtol, rtol) {
                return Err(format!(
                    "output {} of `{}` at {} differs from reference (max abs diff {:.3e})",
                    i,
                    mold.name(),
                    config,
                    args[i].max_abs_diff(e)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{KernelName, ProblemSize};
    use crate::molds::mold_for;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_paper_kernels_verify_at_baseline() {
        for k in KernelName::paper_kernels() {
            let mold = mold_for(k, ProblemSize::Mini);
            let cfg = mold.baseline_configuration();
            verify_config(mold.as_ref(), &cfg, 1e-9)
                .unwrap_or_else(|e| panic!("{k} baseline failed: {e}"));
        }
    }

    #[test]
    fn random_configs_verify() {
        let mut rng = SmallRng::seed_from_u64(42);
        for k in KernelName::paper_kernels() {
            let mold = mold_for(k, ProblemSize::Mini);
            for _ in 0..3 {
                let cfg = mold.space().sample(&mut rng);
                verify_config(mold.as_ref(), &cfg, 1e-9)
                    .unwrap_or_else(|e| panic!("{k} at random config failed: {e}"));
            }
        }
    }
}
