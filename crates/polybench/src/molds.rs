//! Code molds: parameterized kernels that instantiate to lowered TIR.
//!
//! A *code mold* is the paper's term for a kernel template whose tunable
//! statements (`split(y, #P0)` …) are holes filled in with a configuration
//! — step 2 of the proposed framework's iterative phase.

use crate::datasets::{KernelName, ProblemSize};
use crate::spaces::SpaceMode;
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_tir::analyze::Diagnostic;
use tvm_tir::PrimFunc;

/// A tunable kernel: a parameter space plus an instantiation function.
pub trait CodeMold: Send + Sync {
    /// Kernel name (e.g. `"3mm"`).
    fn name(&self) -> &str;

    /// Problem-size class this mold was built for.
    fn size(&self) -> ProblemSize;

    /// Which schedule-space region this mold spans.
    fn mode(&self) -> SpaceMode {
        SpaceMode::Paper
    }

    /// The tuning space (the paper's `cs` object).
    fn space(&self) -> &ConfigSpace;

    /// Pre-lowering legality check on the *declared* schedule facts of
    /// `config` — split factors, fuse adjacency, vectorize widths — run
    /// before [`CodeMold::instantiate`] so that configurations which
    /// would panic during scheduling (zero tiles, non-adjacent fuses)
    /// are denied first. An empty result means "may instantiate"; any
    /// returned diagnostic is a `Deny` with a stable `TIR-*` code.
    ///
    /// Paper-mode spaces contain no illegal schedule, so the default is
    /// unconditionally clean.
    fn prelint(&self, config: &Configuration) -> Vec<Diagnostic> {
        let _ = config;
        Vec::new()
    }

    /// Fill the mold's holes with `config` and lower to TIR.
    ///
    /// # Panics
    /// If `config` does not belong to [`CodeMold::space`], or if it
    /// declares an illegal schedule that [`CodeMold::prelint`] would
    /// have denied (callers must prelint first).
    fn instantiate(&self, config: &Configuration) -> PrimFunc;

    /// Allocate and initialize the argument arrays (inputs followed by
    /// outputs, matching the instantiated function's parameter order).
    fn init_args(&self) -> Vec<NDArray>;

    /// Expected output arrays for [`CodeMold::init_args`], computed by the
    /// reference implementation — same length/order as the function's
    /// parameters, with `None` for pure inputs that the kernel must not
    /// modify beyond its contract.
    fn reference_args(&self) -> Vec<Option<NDArray>>;

    /// The untuned baseline of the paper's §4 listings (`tile = 8`
    /// everywhere, clamped into the space). Aggressive scheduling knobs
    /// stay at their neutral first value, and the illegal tile factor 0
    /// is never selected, so the baseline always instantiates.
    fn baseline_configuration(&self) -> Configuration {
        let space = self.space();
        let names: Vec<String> = space
            .params()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        let values = space
            .params()
            .iter()
            .map(|p| {
                if crate::spaces::KNOB_NAMES.contains(&p.name()) {
                    return p.value_at(0);
                }
                // Closest value to 8 in the ordinal sequence (skipping
                // the aggressive space's illegal factor 0).
                let card = p.cardinality().expect("mold spaces are discrete");
                let mut best = p.value_at(0);
                let mut bd = f64::INFINITY;
                for i in 0..card as usize {
                    let v = p.value_at(i);
                    if v.as_int() == Some(0) {
                        continue;
                    }
                    let d = (v.as_int().unwrap_or(0) - 8).abs() as f64;
                    if d < bd {
                        bd = d;
                        best = v;
                    }
                }
                best
            })
            .collect();
        Configuration::new(names, values)
    }
}

/// Construct the mold for a kernel at a problem size under a space mode.
pub fn mold_for_mode(kernel: KernelName, size: ProblemSize, mode: SpaceMode) -> Box<dyn CodeMold> {
    match kernel {
        KernelName::Mm3 => Box::new(crate::kernels::mm3::Mm3Mold::with_mode(size, mode)),
        KernelName::Lu => Box::new(crate::kernels::lu::LuMold::with_mode(size, mode)),
        KernelName::Cholesky => Box::new(crate::kernels::cholesky::CholeskyMold::with_mode(
            size, mode,
        )),
        KernelName::Gemm => Box::new(crate::kernels::gemm::GemmMold::with_mode(size, mode)),
        KernelName::Mm2 => Box::new(crate::kernels::mm2::Mm2Mold::with_mode(size, mode)),
        KernelName::Syrk => Box::new(crate::kernels::syrk::SyrkMold::with_mode(size, mode)),
        KernelName::Trmm => Box::new(crate::kernels::trmm::TrmmMold::with_mode(size, mode)),
    }
}

/// Construct the paper-space mold for a kernel at a problem size.
pub fn mold_for(kernel: KernelName, size: ProblemSize) -> Box<dyn CodeMold> {
    mold_for_mode(kernel, size, SpaceMode::Paper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_snaps_to_eight() {
        let mold = mold_for(KernelName::Lu, ProblemSize::Large);
        let base = mold.baseline_configuration();
        // divisors of 2000 include 8 exactly.
        assert_eq!(base.ints(), vec![8, 8]);
        assert!(mold.space().validate(&base));
    }

    #[test]
    fn mold_names_match() {
        assert_eq!(mold_for(KernelName::Mm3, ProblemSize::Mini).name(), "3mm");
        assert_eq!(mold_for(KernelName::Lu, ProblemSize::Mini).name(), "lu");
        assert_eq!(
            mold_for(KernelName::Cholesky, ProblemSize::Mini).name(),
            "cholesky"
        );
        assert_eq!(mold_for(KernelName::Gemm, ProblemSize::Mini).name(), "gemm");
        assert_eq!(mold_for(KernelName::Mm2, ProblemSize::Mini).name(), "2mm");
    }

    #[test]
    fn aggressive_baseline_is_legal_and_neutral() {
        for kernel in [
            KernelName::Gemm,
            KernelName::Mm2,
            KernelName::Mm3,
            KernelName::Lu,
            KernelName::Cholesky,
            KernelName::Syrk,
            KernelName::Trmm,
        ] {
            let mold = mold_for_mode(kernel, ProblemSize::Mini, SpaceMode::Aggressive);
            assert_eq!(mold.mode(), SpaceMode::Aggressive);
            let base = mold.baseline_configuration();
            assert!(mold.space().validate(&base), "{kernel}");
            assert!(
                mold.prelint(&base).is_empty(),
                "{kernel}: baseline must pass the prelint"
            );
            for knob in crate::spaces::KNOB_NAMES {
                if let Some(v) = base.get(knob) {
                    assert_eq!(v.as_int(), Some(0), "{kernel}: {knob} must stay neutral");
                }
            }
            for p in mold.space().params() {
                if crate::spaces::KNOB_NAMES.contains(&p.name()) {
                    continue;
                }
                assert_ne!(
                    base.int(p.name()),
                    0,
                    "{kernel}: baseline must never pick tile 0"
                );
            }
        }
    }
}
