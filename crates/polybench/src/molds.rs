//! Code molds: parameterized kernels that instantiate to lowered TIR.
//!
//! A *code mold* is the paper's term for a kernel template whose tunable
//! statements (`split(y, #P0)` …) are holes filled in with a configuration
//! — step 2 of the proposed framework's iterative phase.

use crate::datasets::{KernelName, ProblemSize};
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_tir::PrimFunc;

/// A tunable kernel: a parameter space plus an instantiation function.
pub trait CodeMold: Send + Sync {
    /// Kernel name (e.g. `"3mm"`).
    fn name(&self) -> &str;

    /// Problem-size class this mold was built for.
    fn size(&self) -> ProblemSize;

    /// The tuning space (the paper's `cs` object).
    fn space(&self) -> &ConfigSpace;

    /// Fill the mold's holes with `config` and lower to TIR.
    ///
    /// # Panics
    /// If `config` does not belong to [`CodeMold::space`].
    fn instantiate(&self, config: &Configuration) -> PrimFunc;

    /// Allocate and initialize the argument arrays (inputs followed by
    /// outputs, matching the instantiated function's parameter order).
    fn init_args(&self) -> Vec<NDArray>;

    /// Expected output arrays for [`CodeMold::init_args`], computed by the
    /// reference implementation — same length/order as the function's
    /// parameters, with `None` for pure inputs that the kernel must not
    /// modify beyond its contract.
    fn reference_args(&self) -> Vec<Option<NDArray>>;

    /// The untuned baseline of the paper's §4 listings (`tile = 8`
    /// everywhere, clamped into the space).
    fn baseline_configuration(&self) -> Configuration {
        let space = self.space();
        let names: Vec<String> = space
            .params()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        let values = space
            .params()
            .iter()
            .map(|p| {
                // Closest value to 8 in the ordinal sequence.
                let card = p.cardinality().expect("mold spaces are discrete");
                let mut best = p.value_at(0);
                let mut bd = f64::INFINITY;
                for i in 0..card as usize {
                    let v = p.value_at(i);
                    let d = (v.as_int().unwrap_or(0) - 8).abs() as f64;
                    if d < bd {
                        bd = d;
                        best = v;
                    }
                }
                best
            })
            .collect();
        Configuration::new(names, values)
    }
}

/// Construct the mold for a kernel at a problem size.
pub fn mold_for(kernel: KernelName, size: ProblemSize) -> Box<dyn CodeMold> {
    match kernel {
        KernelName::Mm3 => Box::new(crate::kernels::mm3::Mm3Mold::new(size)),
        KernelName::Lu => Box::new(crate::kernels::lu::LuMold::new(size)),
        KernelName::Cholesky => Box::new(crate::kernels::cholesky::CholeskyMold::new(size)),
        KernelName::Gemm => Box::new(crate::kernels::gemm::GemmMold::new(size)),
        KernelName::Mm2 => Box::new(crate::kernels::mm2::Mm2Mold::new(size)),
        KernelName::Syrk => Box::new(crate::kernels::syrk::SyrkMold::new(size)),
        KernelName::Trmm => Box::new(crate::kernels::trmm::TrmmMold::new(size)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_snaps_to_eight() {
        let mold = mold_for(KernelName::Lu, ProblemSize::Large);
        let base = mold.baseline_configuration();
        // divisors of 2000 include 8 exactly.
        assert_eq!(base.ints(), vec![8, 8]);
        assert!(mold.space().validate(&base));
    }

    #[test]
    fn mold_names_match() {
        assert_eq!(mold_for(KernelName::Mm3, ProblemSize::Mini).name(), "3mm");
        assert_eq!(mold_for(KernelName::Lu, ProblemSize::Mini).name(), "lu");
        assert_eq!(
            mold_for(KernelName::Cholesky, ProblemSize::Mini).name(),
            "cholesky"
        );
        assert_eq!(mold_for(KernelName::Gemm, ProblemSize::Mini).name(), "gemm");
        assert_eq!(mold_for(KernelName::Mm2, ProblemSize::Mini).name(), "2mm");
    }
}
