#![warn(missing_docs)]
//! # polybench — PolyBench 4.2 kernels as TVM-style code molds
//!
//! The paper tunes three PolyBench 4.2 kernels — `3mm`, `cholesky` and
//! `lu` — written in the TE language, with their loop-tiling `split`
//! factors exposed as tunable parameters ("code molds"). This crate
//! provides:
//!
//! * [`datasets`] — the PolyBench problem-size presets
//!   (mini…extralarge; the paper uses *large* and *extralarge*),
//! * [`kernels`] — the kernel molds: `3mm` goes through the full TE →
//!   schedule → lower pipeline with the paper's six split parameters;
//!   `lu` and `cholesky` (loop-carried dependences) are built as
//!   right-looking factorizations with tiled trailing updates via the
//!   imperative TIR builder, exposing the paper's two tile parameters.
//!   `gemm` and `2mm` are included as extensions,
//! * [`spaces`] — the exact tuning spaces of the paper (ordinal
//!   hyperparameters over divisor lists), reproducing Table 1's
//!   cardinalities bit-for-bit,
//! * [`reference`](crate::reference) — plain-Rust reference implementations used to verify
//!   every mold configuration numerically,
//! * [`molds`] — the [`molds::CodeMold`] trait tying it together for the
//!   tuners.
//!
//! ```
//! use polybench::{molds::mold_for, KernelName, ProblemSize};
//! let mold = mold_for(KernelName::Lu, ProblemSize::Mini);
//! assert_eq!(mold.space().len(), 2); // tile_y, tile_x
//! let cfg = mold.space().default_configuration();
//! let func = mold.instantiate(&cfg);
//! assert!(func.body.loop_depth() >= 3);
//! ```

pub mod datasets;
pub mod divisors;
pub mod kernels;
pub mod molds;
pub mod reference;
pub mod spaces;
pub mod verify;

pub use datasets::{KernelName, ProblemSize};
pub use molds::{mold_for, mold_for_mode, CodeMold};
pub use spaces::{embed_config, space_for, space_for_mode, SpaceMode};
