//! PolyBench 4.2 dataset presets.

use std::fmt;

/// PolyBench problem-size classes. The paper evaluates `Large` and
/// `ExtraLarge`; the smaller classes drive correctness tests and the CPU
//  examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemSize {
    /// Tiny — unit tests.
    Mini,
    /// Small — integration tests.
    Small,
    /// Medium — CPU examples.
    Medium,
    /// PolyBench LARGE (the paper's "large": LU/Cholesky N=2000).
    Large,
    /// PolyBench EXTRALARGE (the paper's "extralarge": N=4000).
    ExtraLarge,
}

impl ProblemSize {
    /// All sizes, ascending.
    pub fn all() -> [ProblemSize; 5] {
        [
            ProblemSize::Mini,
            ProblemSize::Small,
            ProblemSize::Medium,
            ProblemSize::Large,
            ProblemSize::ExtraLarge,
        ]
    }

    /// Parse from the lowercase names used on bench CLIs.
    pub fn parse(s: &str) -> Option<ProblemSize> {
        match s {
            "mini" => Some(ProblemSize::Mini),
            "small" => Some(ProblemSize::Small),
            "medium" => Some(ProblemSize::Medium),
            "large" => Some(ProblemSize::Large),
            "extralarge" | "xl" => Some(ProblemSize::ExtraLarge),
            _ => None,
        }
    }
}

impl fmt::Display for ProblemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProblemSize::Mini => "mini",
            ProblemSize::Small => "small",
            ProblemSize::Medium => "medium",
            ProblemSize::Large => "large",
            ProblemSize::ExtraLarge => "extralarge",
        };
        f.write_str(s)
    }
}

/// The kernels this crate implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelName {
    /// Three chained matrix multiplications `G = (A·B)·(C·D)`.
    Mm3,
    /// LU decomposition without pivoting (right-looking).
    Lu,
    /// Cholesky decomposition (right-looking).
    Cholesky,
    /// Single matrix multiplication `C = α·A·B + β·C` (extension).
    Gemm,
    /// Two chained multiplications `D = α·A·B·C + β·D` (extension).
    Mm2,
    /// Symmetric rank-M update `C = α·A·Aᵀ + β·C`, lower triangle
    /// (extension).
    Syrk,
    /// Triangular matrix multiplication `B = α·A·B`, `A` unit lower
    /// triangular (extension).
    Trmm,
}

impl KernelName {
    /// The paper's three kernels.
    pub fn paper_kernels() -> [KernelName; 3] {
        [KernelName::Mm3, KernelName::Cholesky, KernelName::Lu]
    }

    /// Parse from the lowercase names used on bench CLIs.
    pub fn parse(s: &str) -> Option<KernelName> {
        match s {
            "3mm" | "mm3" => Some(KernelName::Mm3),
            "lu" => Some(KernelName::Lu),
            "cholesky" => Some(KernelName::Cholesky),
            "gemm" => Some(KernelName::Gemm),
            "2mm" | "mm2" => Some(KernelName::Mm2),
            "syrk" => Some(KernelName::Syrk),
            "trmm" => Some(KernelName::Trmm),
            _ => None,
        }
    }
}

impl fmt::Display for KernelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelName::Mm3 => "3mm",
            KernelName::Lu => "lu",
            KernelName::Cholesky => "cholesky",
            KernelName::Gemm => "gemm",
            KernelName::Mm2 => "2mm",
            KernelName::Syrk => "syrk",
            KernelName::Trmm => "trmm",
        };
        f.write_str(s)
    }
}

/// Dimensions of `3mm`: `A: N×L, B: L×M, C: M×O, D: O×P` (paper naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mm3Dims {
    /// Rows of `A`, `E`, `G`.
    pub n: usize,
    /// Columns of `A` / rows of `B`.
    pub l: usize,
    /// Columns of `B`, rows of `C`; the `G` reduction depth.
    pub m: usize,
    /// Columns of `C` / rows of `D`.
    pub o: usize,
    /// Columns of `D`, `F`, `G`.
    pub p: usize,
}

/// `3mm` dimensions per size class (PolyBench 4.2 table; the paper quotes
/// large = 800/900/1000/1100/1200, extralarge = ×2).
pub fn mm3_dims(size: ProblemSize) -> Mm3Dims {
    match size {
        ProblemSize::Mini => Mm3Dims {
            n: 16,
            l: 18,
            m: 20,
            o: 22,
            p: 24,
        },
        ProblemSize::Small => Mm3Dims {
            n: 40,
            l: 50,
            m: 60,
            o: 70,
            p: 80,
        },
        ProblemSize::Medium => Mm3Dims {
            n: 180,
            l: 190,
            m: 200,
            o: 210,
            p: 220,
        },
        ProblemSize::Large => Mm3Dims {
            n: 800,
            l: 900,
            m: 1000,
            o: 1100,
            p: 1200,
        },
        ProblemSize::ExtraLarge => Mm3Dims {
            n: 1600,
            l: 1800,
            m: 2000,
            o: 2200,
            p: 2400,
        },
    }
}

/// Matrix order `N` for the factorization kernels (LU, Cholesky).
pub fn factorization_n(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Mini => 40,
        ProblemSize::Small => 120,
        ProblemSize::Medium => 400,
        ProblemSize::Large => 2000,
        ProblemSize::ExtraLarge => 4000,
    }
}

/// Dimensions `(NI, NJ, NK)` for `gemm`: `C: NI×NJ, A: NI×NK, B: NK×NJ`.
pub fn gemm_dims(size: ProblemSize) -> (usize, usize, usize) {
    match size {
        ProblemSize::Mini => (20, 25, 30),
        ProblemSize::Small => (60, 70, 80),
        ProblemSize::Medium => (200, 220, 240),
        ProblemSize::Large => (1000, 1100, 1200),
        ProblemSize::ExtraLarge => (2000, 2300, 2600),
    }
}

/// Dimensions `(M, N)` for `syrk`: `C: N×N`, `A: N×M`.
pub fn syrk_dims(size: ProblemSize) -> (usize, usize) {
    match size {
        ProblemSize::Mini => (20, 30),
        ProblemSize::Small => (60, 80),
        ProblemSize::Medium => (200, 240),
        ProblemSize::Large => (1000, 1200),
        ProblemSize::ExtraLarge => (2000, 2600),
    }
}

/// Dimensions `(M, N)` for `trmm`: `A: M×M` (unit lower triangular),
/// `B: M×N`.
pub fn trmm_dims(size: ProblemSize) -> (usize, usize) {
    match size {
        ProblemSize::Mini => (20, 30),
        ProblemSize::Small => (60, 80),
        ProblemSize::Medium => (200, 240),
        ProblemSize::Large => (1000, 1200),
        ProblemSize::ExtraLarge => (2000, 2600),
    }
}

/// Dimensions `(NI, NJ, NK, NL)` for `2mm`.
pub fn mm2_dims(size: ProblemSize) -> (usize, usize, usize, usize) {
    match size {
        ProblemSize::Mini => (16, 18, 22, 24),
        ProblemSize::Small => (40, 50, 70, 80),
        ProblemSize::Medium => (180, 190, 210, 220),
        ProblemSize::Large => (800, 900, 1100, 1200),
        ProblemSize::ExtraLarge => (1600, 1800, 2200, 2400),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert_eq!(factorization_n(ProblemSize::Large), 2000);
        assert_eq!(factorization_n(ProblemSize::ExtraLarge), 4000);
        let d = mm3_dims(ProblemSize::ExtraLarge);
        assert_eq!((d.n, d.l, d.m, d.o, d.p), (1600, 1800, 2000, 2200, 2400));
        let d = mm3_dims(ProblemSize::Large);
        assert_eq!((d.n, d.l, d.m, d.o, d.p), (800, 900, 1000, 1100, 1200));
    }

    #[test]
    fn parse_roundtrip() {
        for s in ProblemSize::all() {
            assert_eq!(ProblemSize::parse(&s.to_string()), Some(s));
        }
        for k in [
            KernelName::Mm3,
            KernelName::Lu,
            KernelName::Cholesky,
            KernelName::Gemm,
            KernelName::Mm2,
            KernelName::Syrk,
            KernelName::Trmm,
        ] {
            assert_eq!(KernelName::parse(&k.to_string()), Some(k));
        }
        assert_eq!(ProblemSize::parse("xl"), Some(ProblemSize::ExtraLarge));
        assert_eq!(ProblemSize::parse("nope"), None);
    }

    #[test]
    fn sizes_are_monotone() {
        let ns: Vec<usize> = ProblemSize::all()
            .iter()
            .map(|&s| factorization_n(s))
            .collect();
        assert!(ns.windows(2).all(|w| w[0] < w[1]));
    }
}
