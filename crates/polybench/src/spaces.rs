//! Tuning-space construction for the PolyBench molds.
//!
//! Two modes exist. [`SpaceMode::Paper`] reproduces the paper's §4 spaces
//! exactly: each split factor is an ordinal hyperparameter over "the
//! common factors of each matrix rank", and [`space_for`] reproduces
//! Table 1's cardinalities. [`SpaceMode::Aggressive`] grows the frontier:
//! non-divisor tile sizes (guarded tail iterations), the degenerate
//! `tile == extent` / `tile > extent` edges, the illegal factor 0, and —
//! for the TE matmul kernels — loop-order, fuse, vectorize, parallel and
//! unroll knobs that are *not* all legal or race-free. The static
//! analyzer (prelint + bounds/race checks) is the gatekeeper that prunes
//! the wild region before anything compiles or runs.

use crate::datasets::{
    factorization_n, gemm_dims, mm2_dims, mm3_dims, syrk_dims, trmm_dims, KernelName, ProblemSize,
};
use crate::divisors::{aggressive_tiles, divisors};
use configspace::{ConfigSpace, Configuration, Hyperparameter};

/// Which region of schedule space a kernel's `ConfigSpace` spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpaceMode {
    /// The paper's divisor-only spaces (Table 1 cardinalities); every
    /// configuration instantiates and is race-free by construction.
    #[default]
    Paper,
    /// Divisors plus non-divisor/overshooting/zero tiles and scheduling
    /// knobs; a sizable fraction of configurations is statically denied.
    Aggressive,
}

impl SpaceMode {
    /// Parse from the lowercase names used on bench CLIs.
    pub fn parse(s: &str) -> Option<SpaceMode> {
        match s {
            "paper" => Some(SpaceMode::Paper),
            "aggressive" => Some(SpaceMode::Aggressive),
            _ => None,
        }
    }
}

impl std::fmt::Display for SpaceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SpaceMode::Paper => "paper",
            SpaceMode::Aggressive => "aggressive",
        })
    }
}

/// Names of the aggressive scheduling knobs (beyond tile factors). The
/// first value of each knob reproduces the paper-mode schedule, so any
/// paper configuration embeds into the aggressive space via
/// [`embed_config`].
pub const KNOB_NAMES: [&str; 5] = ["ORDER", "FUSE", "VEC", "PAR", "UNROLL"];

/// Tile-factor value list for one axis under a mode.
fn tiles(n: usize, mode: SpaceMode) -> Vec<i64> {
    match mode {
        SpaceMode::Paper => divisors(n as u64),
        SpaceMode::Aggressive => aggressive_tiles(n as u64),
    }
}

/// The scheduling knobs added to the TE matmul kernels in aggressive
/// mode. Neutral (paper-equivalent) value first in every list:
/// * `ORDER`: loop order — 0 `yo,xo,k,yi,xi` (paper), 1 `xo,yo,k,xi,yi`,
///   2 `yo,xo,yi,xi,k` (reduction innermost).
/// * `FUSE`: 0 none, 1 fuse the two outermost tile loops (always
///   adjacent), 2 fuse `y.outer` with the reduction axis — only adjacent
///   under `ORDER == 1`, otherwise denied by `TIR-FUSE-ILLEGAL`.
/// * `VEC`: vector lanes on the innermost column axis; 0 disables.
///   Lanes exceeding the column tile are denied by `TIR-VEC-OVER`.
/// * `PAR`: 0 parallel outermost (paper), 1 serial, 2 parallel the
///   reduction axis — a write-write race the analyzer denies.
/// * `UNROLL`: 0 none, 1 unroll the inner row loop.
fn matmul_knobs() -> Vec<Hyperparameter> {
    vec![
        Hyperparameter::ordinal_ints("ORDER", &[0, 1, 2]),
        Hyperparameter::ordinal_ints("FUSE", &[0, 1, 2]),
        Hyperparameter::ordinal_ints("VEC", &[0, 2, 4, 8, 64]),
        Hyperparameter::ordinal_ints("PAR", &[0, 1, 2]),
        Hyperparameter::ordinal_ints("UNROLL", &[0, 1]),
    ]
}

/// Tuning space for a kernel at a problem size under a [`SpaceMode`].
///
/// Paper mode:
/// * `3mm`: six ordinals `P0..P5`. Following the paper's ConfigSpace
///   listing, `P0`/`P3` range over the divisors of `M`, `P1`/`P5` over the
///   divisors of `N`, and `P2`/`P4` over the divisors of `P`
///   (large: 16·18·30·16·30·18 = 74,649,600; extralarge:
///   20·21·36·20·36·21 = 228,614,400 — Table 1).
/// * `lu`, `cholesky`: two ordinals (`tile_y`, `tile_x`) over the divisors
///   of `N` (large: 20² = 400; extralarge: 24² = 576 — Table 1).
/// * `gemm` / `2mm` (extensions): the analogous divisor spaces.
///
/// Aggressive mode keeps the same tile parameters over
/// [`aggressive_tiles`] value lists (a strict superset of the divisors)
/// and, for the TE matmul kernels (`gemm`, `2mm`, `3mm`), adds the
/// [`matmul_knobs`]; `syrk` gains the `PAR` knob (its reduction loop can
/// be — unsoundly — parallelized).
pub fn space_for_mode(kernel: KernelName, size: ProblemSize, mode: SpaceMode) -> ConfigSpace {
    let mut cs = ConfigSpace::new();
    match kernel {
        KernelName::Mm3 => {
            let d = mm3_dims(size);
            let (dm, dn, dp) = (tiles(d.m, mode), tiles(d.n, mode), tiles(d.p, mode));
            cs.add(Hyperparameter::ordinal_ints("P0", &dm));
            cs.add(Hyperparameter::ordinal_ints("P1", &dn));
            cs.add(Hyperparameter::ordinal_ints("P2", &dp));
            cs.add(Hyperparameter::ordinal_ints("P3", &dm));
            cs.add(Hyperparameter::ordinal_ints("P4", &dp));
            cs.add(Hyperparameter::ordinal_ints("P5", &dn));
            if mode == SpaceMode::Aggressive {
                cs.add_all(matmul_knobs());
            }
        }
        KernelName::Lu | KernelName::Cholesky => {
            let n = factorization_n(size);
            let dn = tiles(n, mode);
            cs.add(Hyperparameter::ordinal_ints("P0", &dn));
            cs.add(Hyperparameter::ordinal_ints("P1", &dn));
        }
        KernelName::Gemm => {
            let (ni, nj, _) = gemm_dims(size);
            cs.add(Hyperparameter::ordinal_ints("P0", &tiles(ni, mode)));
            cs.add(Hyperparameter::ordinal_ints("P1", &tiles(nj, mode)));
            if mode == SpaceMode::Aggressive {
                cs.add_all(matmul_knobs());
            }
        }
        KernelName::Syrk => {
            let (_, n) = syrk_dims(size);
            let dn = tiles(n, mode);
            cs.add(Hyperparameter::ordinal_ints("P0", &dn));
            cs.add(Hyperparameter::ordinal_ints("P1", &dn));
            if mode == SpaceMode::Aggressive {
                cs.add(Hyperparameter::ordinal_ints("PAR", &[0, 1, 2]));
            }
        }
        KernelName::Trmm => {
            let (m, n) = trmm_dims(size);
            cs.add(Hyperparameter::ordinal_ints("P0", &tiles(m, mode)));
            cs.add(Hyperparameter::ordinal_ints("P1", &tiles(n, mode)));
        }
        KernelName::Mm2 => {
            let (ni, nj, _, nl) = mm2_dims(size);
            cs.add(Hyperparameter::ordinal_ints("P0", &tiles(ni, mode)));
            cs.add(Hyperparameter::ordinal_ints("P1", &tiles(nj, mode)));
            cs.add(Hyperparameter::ordinal_ints("P2", &tiles(ni, mode)));
            cs.add(Hyperparameter::ordinal_ints("P3", &tiles(nl, mode)));
            if mode == SpaceMode::Aggressive {
                cs.add_all(matmul_knobs());
            }
        }
    }
    cs
}

/// The paper's tuning space — [`space_for_mode`] with [`SpaceMode::Paper`].
pub fn space_for(kernel: KernelName, size: ProblemSize) -> ConfigSpace {
    space_for_mode(kernel, size, SpaceMode::Paper)
}

/// Embed a configuration from a narrower space into `space`: parameters
/// present in `config` keep their values, parameters `config` lacks (the
/// aggressive knobs) take their first — neutral — value. The result
/// instantiates to the same schedule as `config` did in its own space.
pub fn embed_config(space: &ConfigSpace, config: &Configuration) -> Configuration {
    let names: Vec<String> = space.params().iter().map(|p| p.name().to_string()).collect();
    let values = space
        .params()
        .iter()
        .map(|p| match config.get(p.name()) {
            Some(v) => v.clone(),
            None => p.value_at(0),
        })
        .collect();
    Configuration::new(names, values)
}

/// The rows of the paper's Table 1: `(kernel, size, cardinality)`.
pub fn table1() -> Vec<(KernelName, ProblemSize, u128)> {
    let mut rows = Vec::new();
    for kernel in KernelName::paper_kernels() {
        for size in [ProblemSize::Large, ProblemSize::ExtraLarge] {
            let sz = space_for(kernel, size)
                .size()
                .expect("paper spaces are discrete");
            rows.push((kernel, size, sz));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_KERNELS: [KernelName; 7] = [
        KernelName::Mm3,
        KernelName::Lu,
        KernelName::Cholesky,
        KernelName::Gemm,
        KernelName::Mm2,
        KernelName::Syrk,
        KernelName::Trmm,
    ];

    #[test]
    fn table1_cardinalities_match_paper() {
        let expect = [
            (KernelName::Mm3, ProblemSize::Large, 74_649_600u128),
            (KernelName::Mm3, ProblemSize::ExtraLarge, 228_614_400),
            (KernelName::Cholesky, ProblemSize::Large, 400),
            (KernelName::Cholesky, ProblemSize::ExtraLarge, 576),
            (KernelName::Lu, ProblemSize::Large, 400),
            (KernelName::Lu, ProblemSize::ExtraLarge, 576),
        ];
        for (k, s, expected) in expect {
            let got = space_for(k, s).size().expect("discrete");
            assert_eq!(got, expected, "{k} {s}");
        }
    }

    #[test]
    fn table1_helper_covers_all_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|&(_, _, sz)| sz == 228_614_400));
    }

    #[test]
    fn mm3_xl_p0_matches_paper_listing() {
        let cs = space_for(KernelName::Mm3, ProblemSize::ExtraLarge);
        let p0 = cs.get("P0").expect("P0");
        assert_eq!(p0.cardinality(), Some(20));
        assert_eq!(p0.value_at(0).as_int(), Some(1), "sequence starts at 1");
        assert_eq!(p0.value_at(19).as_int(), Some(2000));
        let p2 = cs.get("P2").expect("P2");
        assert_eq!(p2.cardinality(), Some(36));
    }

    #[test]
    fn paper_best_configs_are_in_space() {
        // Fig. 5: LU large best 400x50; Fig. 7: LU xl best 40x32;
        // Fig. 9: Cholesky large 125x50; Fig. 11: Cholesky xl 80x32.
        use configspace::ParamValue;
        let inspace = |k, s, ty: i64, tx: i64| {
            let cs = space_for(k, s);
            cs.get("P0")
                .unwrap()
                .index_of(&ParamValue::Int(ty))
                .is_some()
                && cs
                    .get("P1")
                    .unwrap()
                    .index_of(&ParamValue::Int(tx))
                    .is_some()
        };
        assert!(inspace(KernelName::Lu, ProblemSize::Large, 400, 50));
        assert!(inspace(KernelName::Lu, ProblemSize::ExtraLarge, 40, 32));
        assert!(inspace(KernelName::Cholesky, ProblemSize::Large, 125, 50));
        assert!(inspace(
            KernelName::Cholesky,
            ProblemSize::ExtraLarge,
            80,
            32
        ));
    }

    #[test]
    fn extension_spaces_are_discrete() {
        for k in [KernelName::Gemm, KernelName::Mm2] {
            for s in [ProblemSize::Mini, ProblemSize::Large] {
                assert!(space_for(k, s).size().is_some());
            }
        }
    }

    #[test]
    fn aggressive_space_is_strict_superset() {
        // Every paper parameter value stays addressable in the aggressive
        // space (same name, value present), and the aggressive space is
        // strictly larger — for all seven kernels at both a test size and
        // a paper size.
        for kernel in ALL_KERNELS {
            for size in [ProblemSize::Mini, ProblemSize::Large] {
                let paper = space_for_mode(kernel, size, SpaceMode::Paper);
                let agg = space_for_mode(kernel, size, SpaceMode::Aggressive);
                for p in paper.params() {
                    let ap = agg
                        .get(p.name())
                        .unwrap_or_else(|| panic!("{kernel} {size}: missing {}", p.name()));
                    let card = p.cardinality().expect("discrete") as usize;
                    for i in 0..card {
                        let v = p.value_at(i);
                        assert!(
                            ap.index_of(&v).is_some(),
                            "{kernel} {size}: paper value {v:?} of {} absent",
                            p.name()
                        );
                    }
                }
                let (ps, ags) = (paper.size().unwrap(), agg.size().unwrap());
                assert!(ags > ps, "{kernel} {size}: {ags} !> {ps}");
            }
        }
    }

    #[test]
    fn aggressive_knobs_are_neutral_first() {
        let cs = space_for_mode(KernelName::Gemm, ProblemSize::Mini, SpaceMode::Aggressive);
        for knob in KNOB_NAMES {
            let p = cs.get(knob).unwrap_or_else(|| panic!("missing {knob}"));
            let first = p.value_at(0).as_int().expect("int knob");
            assert_eq!(first, 0, "{knob} must default to the paper schedule");
        }
    }

    #[test]
    fn embed_config_preserves_paper_values() {
        let paper = space_for_mode(KernelName::Gemm, ProblemSize::Mini, SpaceMode::Paper);
        let agg = space_for_mode(KernelName::Gemm, ProblemSize::Mini, SpaceMode::Aggressive);
        let cfg = paper.default_configuration();
        let embedded = embed_config(&agg, &cfg);
        assert!(agg.validate(&embedded), "embedded config must be in space");
        assert_eq!(embedded.int("P0"), cfg.int("P0"));
        assert_eq!(embedded.int("P1"), cfg.int("P1"));
        for knob in KNOB_NAMES {
            assert_eq!(embedded.int(knob), 0, "{knob} neutral");
        }
    }

    #[test]
    fn gemm_mini_aggressive_fits_full_grid() {
        // The BO full-grid acquisition ranking kicks in below 2^16
        // configurations; keep the flagship aggressive space inside it.
        let cs = space_for_mode(KernelName::Gemm, ProblemSize::Mini, SpaceMode::Aggressive);
        let sz = cs.size().expect("discrete");
        assert!(sz <= 1 << 16, "gemm mini aggressive space too big: {sz}");
        assert_eq!(sz, 12 * 11 * 3 * 3 * 5 * 3 * 2);
    }

    #[test]
    fn space_mode_parse_roundtrip() {
        for m in [SpaceMode::Paper, SpaceMode::Aggressive] {
            assert_eq!(SpaceMode::parse(&m.to_string()), Some(m));
        }
        assert_eq!(SpaceMode::parse("wild"), None);
        assert_eq!(SpaceMode::default(), SpaceMode::Paper);
    }
}
