//! The paper's tuning spaces, derived exactly as §4 describes: each split
//! factor is an ordinal hyperparameter over "the common factors of each
//! matrix rank". [`space_for`] reproduces Table 1's cardinalities.

use crate::datasets::{
    factorization_n, gemm_dims, mm2_dims, mm3_dims, syrk_dims, trmm_dims, KernelName, ProblemSize,
};
use crate::divisors::divisors;
use configspace::{ConfigSpace, Hyperparameter};

/// Tuning space for a kernel at a problem size.
///
/// * `3mm`: six ordinals `P0..P5`. Following the paper's ConfigSpace
///   listing, `P0`/`P3` range over the divisors of `M`, `P1`/`P5` over the
///   divisors of `N`, and `P2`/`P4` over the divisors of `P`
///   (large: 16·18·30·16·30·18 = 74,649,600; extralarge:
///   20·21·36·20·36·21 = 228,614,400 — Table 1).
/// * `lu`, `cholesky`: two ordinals (`tile_y`, `tile_x`) over the divisors
///   of `N` (large: 20² = 400; extralarge: 24² = 576 — Table 1).
/// * `gemm` / `2mm` (extensions): the analogous divisor spaces.
pub fn space_for(kernel: KernelName, size: ProblemSize) -> ConfigSpace {
    let mut cs = ConfigSpace::new();
    match kernel {
        KernelName::Mm3 => {
            let d = mm3_dims(size);
            let (dm, dn, dp) = (
                divisors(d.m as u64),
                divisors(d.n as u64),
                divisors(d.p as u64),
            );
            cs.add(Hyperparameter::ordinal_ints("P0", &dm));
            cs.add(Hyperparameter::ordinal_ints("P1", &dn));
            cs.add(Hyperparameter::ordinal_ints("P2", &dp));
            cs.add(Hyperparameter::ordinal_ints("P3", &dm));
            cs.add(Hyperparameter::ordinal_ints("P4", &dp));
            cs.add(Hyperparameter::ordinal_ints("P5", &dn));
        }
        KernelName::Lu | KernelName::Cholesky => {
            let n = factorization_n(size);
            let dn = divisors(n as u64);
            cs.add(Hyperparameter::ordinal_ints("P0", &dn));
            cs.add(Hyperparameter::ordinal_ints("P1", &dn));
        }
        KernelName::Gemm => {
            let (ni, nj, _) = gemm_dims(size);
            cs.add(Hyperparameter::ordinal_ints("P0", &divisors(ni as u64)));
            cs.add(Hyperparameter::ordinal_ints("P1", &divisors(nj as u64)));
        }
        KernelName::Syrk => {
            let (_, n) = syrk_dims(size);
            let dn = divisors(n as u64);
            cs.add(Hyperparameter::ordinal_ints("P0", &dn));
            cs.add(Hyperparameter::ordinal_ints("P1", &dn));
        }
        KernelName::Trmm => {
            let (m, n) = trmm_dims(size);
            cs.add(Hyperparameter::ordinal_ints("P0", &divisors(m as u64)));
            cs.add(Hyperparameter::ordinal_ints("P1", &divisors(n as u64)));
        }
        KernelName::Mm2 => {
            let (ni, nj, _, nl) = mm2_dims(size);
            cs.add(Hyperparameter::ordinal_ints("P0", &divisors(ni as u64)));
            cs.add(Hyperparameter::ordinal_ints("P1", &divisors(nj as u64)));
            cs.add(Hyperparameter::ordinal_ints("P2", &divisors(ni as u64)));
            cs.add(Hyperparameter::ordinal_ints("P3", &divisors(nl as u64)));
        }
    }
    cs
}

/// The rows of the paper's Table 1: `(kernel, size, cardinality)`.
pub fn table1() -> Vec<(KernelName, ProblemSize, u128)> {
    let mut rows = Vec::new();
    for kernel in KernelName::paper_kernels() {
        for size in [ProblemSize::Large, ProblemSize::ExtraLarge] {
            let sz = space_for(kernel, size)
                .size()
                .expect("paper spaces are discrete");
            rows.push((kernel, size, sz));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cardinalities_match_paper() {
        let expect = [
            (KernelName::Mm3, ProblemSize::Large, 74_649_600u128),
            (KernelName::Mm3, ProblemSize::ExtraLarge, 228_614_400),
            (KernelName::Cholesky, ProblemSize::Large, 400),
            (KernelName::Cholesky, ProblemSize::ExtraLarge, 576),
            (KernelName::Lu, ProblemSize::Large, 400),
            (KernelName::Lu, ProblemSize::ExtraLarge, 576),
        ];
        for (k, s, expected) in expect {
            let got = space_for(k, s).size().expect("discrete");
            assert_eq!(got, expected, "{k} {s}");
        }
    }

    #[test]
    fn table1_helper_covers_all_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|&(_, _, sz)| sz == 228_614_400));
    }

    #[test]
    fn mm3_xl_p0_matches_paper_listing() {
        let cs = space_for(KernelName::Mm3, ProblemSize::ExtraLarge);
        let p0 = cs.get("P0").expect("P0");
        assert_eq!(p0.cardinality(), Some(20));
        assert_eq!(p0.value_at(0).as_int(), Some(1), "sequence starts at 1");
        assert_eq!(p0.value_at(19).as_int(), Some(2000));
        let p2 = cs.get("P2").expect("P2");
        assert_eq!(p2.cardinality(), Some(36));
    }

    #[test]
    fn paper_best_configs_are_in_space() {
        // Fig. 5: LU large best 400x50; Fig. 7: LU xl best 40x32;
        // Fig. 9: Cholesky large 125x50; Fig. 11: Cholesky xl 80x32.
        use configspace::ParamValue;
        let inspace = |k, s, ty: i64, tx: i64| {
            let cs = space_for(k, s);
            cs.get("P0")
                .unwrap()
                .index_of(&ParamValue::Int(ty))
                .is_some()
                && cs
                    .get("P1")
                    .unwrap()
                    .index_of(&ParamValue::Int(tx))
                    .is_some()
        };
        assert!(inspace(KernelName::Lu, ProblemSize::Large, 400, 50));
        assert!(inspace(KernelName::Lu, ProblemSize::ExtraLarge, 40, 32));
        assert!(inspace(KernelName::Cholesky, ProblemSize::Large, 125, 50));
        assert!(inspace(
            KernelName::Cholesky,
            ProblemSize::ExtraLarge,
            80,
            32
        ));
    }

    #[test]
    fn extension_spaces_are_discrete() {
        for k in [KernelName::Gemm, KernelName::Mm2] {
            for s in [ProblemSize::Mini, ProblemSize::Large] {
                assert!(space_for(k, s).size().is_some());
            }
        }
    }
}
