//! Tile-size candidate enumeration.
//!
//! The paper builds every ordinal tuning space from "the common factors
//! of each matrix rank" — [`divisors`] reproduces that list exactly. The
//! aggressive space mode widens it with [`aggressive_tiles`]: non-divisor
//! factors (guarded tail iterations), powers of two past the extent, the
//! degenerate `tile == extent` / `tile > extent` edges, and the illegal
//! factor `0` that the schedule prelint must reject before instantiation.

/// All positive divisors of `n`, ascending.
pub fn divisors(n: u64) -> Vec<i64> {
    assert!(n > 0, "divisors of 0 are undefined");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d as i64);
            if d * d != n {
                large.push((n / d) as i64);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// Aggressive tile candidates for a loop of extent `n`, ascending and
/// deduplicated: the divisors of `n` (so the paper space embeds as a
/// strict subset), every power of two up to `2n` (mostly non-divisors —
/// guarded tail tiles), the edges `n - 1`, `n`, and `2n`, and the
/// illegal factor `0` (denied by the `TIR-TRIP-ZERO` prelint).
pub fn aggressive_tiles(n: u64) -> Vec<i64> {
    assert!(n > 0, "tiles of a zero-extent loop are undefined");
    let mut v = divisors(n);
    v.push(0);
    let mut p = 1i64;
    while p as u64 <= 2 * n {
        v.push(p);
        p *= 2;
    }
    v.push(n as i64 - 1);
    v.push(n as i64);
    v.push(2 * n as i64);
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn paper_cardinalities() {
        // These counts generate Table 1 of the paper.
        assert_eq!(divisors(2000).len(), 20); // LU/Cholesky large, 3mm-xl M
        assert_eq!(divisors(4000).len(), 24); // LU/Cholesky extralarge
        assert_eq!(divisors(1600).len(), 21); // 3mm-xl N
        assert_eq!(divisors(2400).len(), 36); // 3mm-xl P
        assert_eq!(divisors(1000).len(), 16); // 3mm-large M
        assert_eq!(divisors(800).len(), 18); // 3mm-large N
        assert_eq!(divisors(1200).len(), 30); // 3mm-large P
    }

    #[test]
    fn matches_paper_p0_sequence() {
        // Paper's P0 list for 3mm extralarge (divisors of 2000).
        assert_eq!(
            divisors(2000),
            vec![
                1, 2, 4, 5, 8, 10, 16, 20, 25, 40, 50, 80, 100, 125, 200, 250, 400, 500, 1000, 2000
            ]
        );
    }

    #[test]
    fn every_divisor_divides() {
        for n in [36u64, 100, 2000, 2400] {
            for d in divisors(n) {
                assert_eq!(n % d as u64, 0);
            }
        }
    }

    #[test]
    fn aggressive_tiles_contain_all_divisors() {
        for n in [1u64, 20, 25, 40, 2000] {
            let agg = aggressive_tiles(n);
            for d in divisors(n) {
                assert!(agg.contains(&d), "divisor {d} of {n} missing");
            }
        }
    }

    #[test]
    fn aggressive_tiles_include_edges_and_zero() {
        let agg = aggressive_tiles(20);
        assert_eq!(
            agg,
            vec![0, 1, 2, 4, 5, 8, 10, 16, 19, 20, 32, 40],
            "divisors + 0 + powers of two <= 40 + {{19, 20, 40}}"
        );
        assert!(aggressive_tiles(40).contains(&80));
    }

    #[test]
    fn aggressive_tiles_sorted_dedup() {
        for n in [1u64, 16, 30, 40] {
            let agg = aggressive_tiles(n);
            assert!(agg.windows(2).all(|w| w[0] < w[1]), "{agg:?}");
        }
    }
}
