//! Divisor enumeration — the paper builds every ordinal tuning space from
//! "the common factors of each matrix rank".

/// All positive divisors of `n`, ascending.
pub fn divisors(n: u64) -> Vec<i64> {
    assert!(n > 0, "divisors of 0 are undefined");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d as i64);
            if d * d != n {
                large.push((n / d) as i64);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn paper_cardinalities() {
        // These counts generate Table 1 of the paper.
        assert_eq!(divisors(2000).len(), 20); // LU/Cholesky large, 3mm-xl M
        assert_eq!(divisors(4000).len(), 24); // LU/Cholesky extralarge
        assert_eq!(divisors(1600).len(), 21); // 3mm-xl N
        assert_eq!(divisors(2400).len(), 36); // 3mm-xl P
        assert_eq!(divisors(1000).len(), 16); // 3mm-large M
        assert_eq!(divisors(800).len(), 18); // 3mm-large N
        assert_eq!(divisors(1200).len(), 30); // 3mm-large P
    }

    #[test]
    fn matches_paper_p0_sequence() {
        // Paper's P0 list for 3mm extralarge (divisors of 2000).
        assert_eq!(
            divisors(2000),
            vec![
                1, 2, 4, 5, 8, 10, 16, 20, 25, 40, 50, 80, 100, 125, 200, 250, 400, 500, 1000, 2000
            ]
        );
    }

    #[test]
    fn every_divisor_divides() {
        for n in [36u64, 100, 2000, 2400] {
            for d in divisors(n) {
                assert_eq!(n % d as u64, 0);
            }
        }
    }
}
