//! Plain-Rust reference implementations (the PolyBench C algorithms),
//! used to verify every mold configuration numerically.
//!
//! Matmuls parallelize over output rows with rayon; the factorizations
//! parallelize the trailing update of each elimination step — the safe
//! data-parallel structure of the right-looking algorithms.

use rayon::prelude::*;
use tvm_runtime::NDArray;
use tvm_te::DType;

/// `C = A · B` for row-major `f64` matrices.
pub fn matmul(a: &NDArray, b: &NDArray) -> NDArray {
    let (n, ka) = (a.shape()[0], a.shape()[1]);
    let (kb, m) = (b.shape()[0], b.shape()[1]);
    assert_eq!(ka, kb, "inner dimensions must agree");
    let av = a.to_f64_vec();
    let bv = b.to_f64_vec();
    let mut cv = vec![0.0f64; n * m];
    cv.par_chunks_mut(m).enumerate().for_each(|(i, row)| {
        for k in 0..ka {
            let aik = av[i * ka + k];
            let brow = &bv[k * m..(k + 1) * m];
            for (j, r) in row.iter_mut().enumerate() {
                *r += aik * brow[j];
            }
        }
    });
    NDArray::from_f64(&[n, m], &cv)
}

/// PolyBench `3mm`: `G = (A·B) · (C·D)`.
pub fn mm3(a: &NDArray, b: &NDArray, c: &NDArray, d: &NDArray) -> NDArray {
    let e = matmul(a, b);
    let f = matmul(c, d);
    matmul(&e, &f)
}

/// PolyBench `gemm`: `C' = alpha·A·B + beta·C`.
pub fn gemm(alpha: f64, a: &NDArray, b: &NDArray, beta: f64, c: &NDArray) -> NDArray {
    let ab = matmul(a, b);
    let mut out = c.clone();
    for i in 0..out.numel() {
        out.set_f64_linear(i, alpha * ab.get_f64_linear(i) + beta * c.get_f64_linear(i));
    }
    out
}

/// PolyBench `2mm`: `D' = alpha·(A·B)·C + beta·D`.
pub fn mm2(alpha: f64, a: &NDArray, b: &NDArray, c: &NDArray, beta: f64, d: &NDArray) -> NDArray {
    let abc = matmul(&matmul(a, b), c);
    let mut out = d.clone();
    for i in 0..out.numel() {
        out.set_f64_linear(
            i,
            alpha * abc.get_f64_linear(i) + beta * d.get_f64_linear(i),
        );
    }
    out
}

/// PolyBench `syrk`: `C' = α·A·Aᵀ + β·C` on the lower triangle
/// (strict upper triangle untouched).
pub fn syrk(alpha: f64, beta: f64, a: &NDArray, c: &NDArray) -> NDArray {
    let (n, m) = (a.shape()[0], a.shape()[1]);
    assert_eq!(c.shape(), &[n, n]);
    let av = a.to_f64_vec();
    let mut out = c.clone();
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            (0..=i)
                .map(|j| {
                    let mut acc = beta * c.get(&[i, j]);
                    for k in 0..m {
                        acc += alpha * av[i * m + k] * av[j * m + k];
                    }
                    acc
                })
                .collect()
        })
        .collect();
    for (i, row) in rows.into_iter().enumerate() {
        for (j, v) in row.into_iter().enumerate() {
            out.set(&[i, j], v);
        }
    }
    out
}

/// PolyBench `trmm`: `B' = α·A·B` with `A` unit lower triangular
/// (`B[i][j] += Σ_{k>i} A[k][i]·B[k][j]`, then scale by α; rows ascending,
/// so the reads see original values).
pub fn trmm(alpha: f64, a: &NDArray, b: &NDArray) -> NDArray {
    let (m, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(a.shape(), &[m, m]);
    let av = a.to_f64_vec();
    let mut v = b.to_f64_vec();
    for i in 0..m {
        for j in 0..n {
            let mut acc = v[i * n + j];
            for k in i + 1..m {
                acc += av[k * m + i] * v[k * n + j];
            }
            v[i * n + j] = alpha * acc;
        }
    }
    NDArray::from_f64(&[m, n], &v)
}

/// In-place LU decomposition without pivoting (right-looking); returns the
/// packed `L\U` matrix (unit diagonal of `L` implicit).
pub fn lu(a: &NDArray) -> NDArray {
    let n = a.shape()[0];
    assert_eq!(a.shape(), &[n, n]);
    let mut v = a.to_f64_vec();
    for k in 0..n {
        let pivot = v[k * n + k];
        assert!(
            pivot.abs() > 1e-300,
            "zero pivot at step {k}: LU without pivoting needs a strongly regular matrix"
        );
        for i in k + 1..n {
            v[i * n + k] /= pivot;
        }
        // Trailing update rows are independent: parallelize.
        let (top, rest) = v.split_at_mut((k + 1) * n);
        let urow = &top[k * n..];
        rest.par_chunks_mut(n).for_each(|row| {
            let lik = row[k];
            for j in k + 1..n {
                row[j] -= lik * urow[j];
            }
        });
    }
    NDArray::from_f64(&[n, n], &v)
}

/// In-place Cholesky factorization of an SPD matrix; the lower triangle
/// (including diagonal) receives `L` with `A = L·Lᵀ`; the strict upper
/// triangle is left untouched (PolyBench semantics).
pub fn cholesky(a: &NDArray) -> NDArray {
    let n = a.shape()[0];
    assert_eq!(a.shape(), &[n, n]);
    let mut v = a.to_f64_vec();
    for k in 0..n {
        let dkk = v[k * n + k];
        assert!(
            dkk > 0.0,
            "non-positive diagonal at step {k}: matrix is not SPD"
        );
        let lkk = dkk.sqrt();
        v[k * n + k] = lkk;
        for i in k + 1..n {
            v[i * n + k] /= lkk;
        }
        // Trailing symmetric rank-1 update on the lower triangle. Rows
        // read column k of *other* rows, so gather that column first.
        let col_k: Vec<f64> = (0..n).map(|i| v[i * n + k]).collect();
        let base = k + 1;
        v[base * n..]
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(off, row)| {
                let i = base + off;
                let lik = col_k[i];
                for (j, ljk) in col_k.iter().enumerate().take(i + 1).skip(base) {
                    row[j] -= lik * ljk;
                }
            });
    }
    NDArray::from_f64(&[n, n], &v)
}

/// Deterministic SPD (and diagonally dominant) test matrix:
/// `A[i][j] = 1/(i+j+1) + 2N·[i==j]` — a Hilbert matrix plus a strong
/// diagonal. SPD ⇒ Cholesky exists; diagonal dominance ⇒ LU without
/// pivoting is stable. (PolyBench builds its SPD input as `B·Bᵀ`, an
/// O(N³) initialization; this O(N²) surrogate keeps the same properties.)
pub fn spd_matrix(n: usize, dtype: DType) -> NDArray {
    NDArray::from_fn(&[n, n], dtype, |idx| {
        let base = 1.0 / (idx[0] + idx[1] + 1) as f64;
        if idx[0] == idx[1] {
            base + 2.0 * n as f64
        } else {
            base
        }
    })
}

/// PolyBench `3mm` input initialization (the C benchmark's `init_array`).
pub fn mm3_inputs(d: &crate::datasets::Mm3Dims, dtype: DType) -> [NDArray; 4] {
    let (n, l, m, o, p) = (d.n, d.l, d.m, d.o, d.p);
    let a = NDArray::from_fn(&[n, l], dtype, |i| {
        ((i[0] * i[1] + 1) % n) as f64 / (5.0 * n as f64)
    });
    let b = NDArray::from_fn(&[l, m], dtype, |i| {
        ((i[0] * (i[1] + 1) + 2) % l) as f64 / (5.0 * l as f64)
    });
    let c = NDArray::from_fn(&[m, o], dtype, |i| {
        (i[0] * (i[1] + 3) % m) as f64 / (5.0 * m as f64)
    });
    let dd = NDArray::from_fn(&[o, p], dtype, |i| {
        ((i[0] * (i[1] + 2) + 2) % o) as f64 / (5.0 * o as f64)
    });
    [a, b, c, dd]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let n = 8;
        let i = NDArray::from_fn(&[n, n], DType::F64, |idx| (idx[0] == idx[1]) as i64 as f64);
        let a = NDArray::random(&[n, n], DType::F64, 1, -1.0, 1.0);
        assert!(matmul(&a, &i).allclose(&a, 1e-12, 1e-12));
        assert!(matmul(&i, &a).allclose(&a, 1e-12, 1e-12));
    }

    #[test]
    fn matmul_associativity() {
        let a = NDArray::random(&[6, 7], DType::F64, 1, -1.0, 1.0);
        let b = NDArray::random(&[7, 8], DType::F64, 2, -1.0, 1.0);
        let c = NDArray::random(&[8, 5], DType::F64, 3, -1.0, 1.0);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.allclose(&right, 1e-10, 1e-12));
    }

    #[test]
    fn lu_reconstructs() {
        let n = 24;
        let a = spd_matrix(n, DType::F64);
        let f = lu(&a);
        // Reconstruct A = L*U from the packed factor.
        let mut recon = NDArray::zeros(&[n, n], DType::F64);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let lik = if k == i { 1.0 } else { f.get(&[i, k]) };
                    s += lik * f.get(&[k, j]);
                }
                recon.set(&[i, j], s);
            }
        }
        assert!(
            recon.allclose(&a, 1e-8, 1e-8),
            "max diff {}",
            recon.max_abs_diff(&a)
        );
    }

    #[test]
    fn cholesky_reconstructs() {
        let n = 24;
        let a = spd_matrix(n, DType::F64);
        let f = cholesky(&a);
        // A = L·Lᵀ over the lower triangle.
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += f.get(&[i, k]) * f.get(&[j, k]);
                }
                let diff = (s - a.get(&[i, j])).abs();
                assert!(diff < 1e-8, "entry ({i},{j}) off by {diff}");
            }
        }
        // Upper triangle untouched.
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(f.get(&[i, j]), a.get(&[i, j]));
            }
        }
    }

    #[test]
    fn cholesky_consistent_with_lu_diagonal() {
        // For SPD A, LU's U diagonal equals L_chol diagonal squared.
        let n = 12;
        let a = spd_matrix(n, DType::F64);
        let l = cholesky(&a);
        let f = lu(&a);
        for i in 0..n {
            let d_lu = f.get(&[i, i]);
            let d_ch = l.get(&[i, i]);
            assert!((d_lu - d_ch * d_ch).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = NDArray::random(&[4, 5], DType::F64, 1, -1.0, 1.0);
        let b = NDArray::random(&[5, 6], DType::F64, 2, -1.0, 1.0);
        let c = NDArray::random(&[4, 6], DType::F64, 3, -1.0, 1.0);
        let out = gemm(2.0, &a, &b, 0.5, &c);
        let ab = matmul(&a, &b);
        for i in 0..out.numel() {
            let expect = 2.0 * ab.get_f64_linear(i) + 0.5 * c.get_f64_linear(i);
            assert!((out.get_f64_linear(i) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn mm3_equals_composed_matmuls() {
        let d = crate::datasets::mm3_dims(crate::datasets::ProblemSize::Mini);
        let [a, b, c, dd] = mm3_inputs(&d, DType::F64);
        let g = mm3(&a, &b, &c, &dd);
        assert_eq!(g.shape(), &[d.n, d.p]);
        let g2 = matmul(&matmul(&a, &b), &matmul(&c, &dd));
        assert!(g.allclose(&g2, 1e-12, 1e-12));
    }

    #[test]
    #[should_panic(expected = "not SPD")]
    fn cholesky_rejects_indefinite() {
        let a = NDArray::from_f64(&[2, 2], &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        let _ = cholesky(&a);
    }

    #[test]
    fn spd_matrix_is_symmetric() {
        let a = spd_matrix(16, DType::F64);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(a.get(&[i, j]), a.get(&[j, i]));
            }
        }
    }
}
