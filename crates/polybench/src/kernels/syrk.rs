//! PolyBench `syrk` (`C = α·A·Aᵀ + β·C`, lower triangle) — extension
//! kernel with a triangular output domain.
//!
//! ```text
//! for io, jo, ii, ji (i tiled by P0, j tiled by P1):
//!   if j <= i:
//!     C[i,j] *= beta
//!     for k in 0..M:  C[i,j] += alpha * A[i,k] * A[j,k]
//! ```
//!
//! Every `(i, j)` element is independent, so any tiling is valid; only
//! the lower triangle (including the diagonal) is written.

use crate::datasets::{syrk_dims, ProblemSize};
use crate::molds::CodeMold;
use crate::spaces::{space_for_mode, SpaceMode};
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_te::ops::cmp;
use tvm_te::{placeholder, DType, PrimExpr};
use tvm_tir::analyze::Diagnostic;
use tvm_tir::builder::{par, seq, ser, store, when, FuncBuilder};
use tvm_tir::PrimFunc;

/// Element type (`DATA_TYPE double`).
pub const DTYPE: DType = DType::F64;
/// PolyBench's `alpha`.
pub const ALPHA: f64 = 1.5;
/// PolyBench's `beta`.
pub const BETA: f64 = 1.2;

fn imm(v: f64) -> PrimExpr {
    PrimExpr::FloatImm(v, DTYPE)
}

/// A loop that is parallel or serial depending on the `PAR` knob.
fn knob_loop(
    parallel: bool,
    name: &str,
    extent: i64,
    f: impl FnOnce(PrimExpr) -> tvm_tir::Stmt,
) -> tvm_tir::Stmt {
    if parallel {
        par(name, extent, f)
    } else {
        ser(name, extent, f)
    }
}

/// Build tiled syrk with a parallelization choice: `par_mode` 0 runs the
/// outer row-tile loop parallel (race-free — the paper schedule), 1 runs
/// everything serial, and 2 parallelizes the `k` reduction instead — a
/// write-write race on `C[i,j]` that the dependence analyzer must deny.
pub(crate) fn build_syrk_par(m: usize, n: usize, ty: i64, tx: i64, par_mode: i64) -> PrimFunc {
    assert!(ty >= 1 && tx >= 1);
    let n_i = n as i64;
    let a = placeholder([n, m], DTYPE, "A");
    let c = placeholder([n, n], DTYPE, "C");
    let mut fb = FuncBuilder::new("syrk");
    let ab = fb.param(&a);
    let cb = fb.param(&c);
    let _ = &ab; // A is read-only; registered for the calling convention.

    let tiles_y = n_i.div_euclid(ty) + i64::from(n_i % ty != 0);
    let tiles_x = n_i.div_euclid(tx) + i64::from(n_i % tx != 0);

    // Row tiles write disjoint C rows (i = io·ty + ii never leaves its
    // tile), so the outer tile loop is parallel under par_mode 0; the
    // dependence analyzer re-proves this per configuration before any
    // pool dispatch.
    let body = knob_loop(par_mode == 0, "io", tiles_y, |io| {
        let (a, c, cb) = (a.clone(), c.clone(), cb.clone());
        ser("jo", tiles_x, move |jo| {
            let (a, c, cb) = (a.clone(), c.clone(), cb.clone());
            let io = io.clone();
            ser("ii", ty, move |ii| {
                let (a, c, cb) = (a.clone(), c.clone(), cb.clone());
                let (io, jo) = (io.clone(), jo.clone());
                ser("ji", tx, move |ji| {
                    let i = io * ty + ii.clone();
                    let j = jo * tx + ji;
                    let active = cmp::and(
                        cmp::and(
                            cmp::lt(i.clone(), PrimExpr::from(n_i)),
                            cmp::lt(j.clone(), PrimExpr::from(n_i)),
                        ),
                        cmp::le(j.clone(), i.clone()),
                    );
                    let scale = store(
                        &cb,
                        &[i.clone(), j.clone()],
                        c.at(&[i.clone(), j.clone()]) * imm(BETA),
                    );
                    let (ic, jc) = (i, j);
                    let (a1, c1, cb1) = (a.clone(), c.clone(), cb.clone());
                    let update = knob_loop(par_mode == 2, "k", m as i64, move |k| {
                        store(
                            &cb1,
                            &[ic.clone(), jc.clone()],
                            c1.at(&[ic.clone(), jc.clone()])
                                + imm(ALPHA)
                                    * a1.at(&[ic.clone(), k.clone()])
                                    * a1.at(&[jc.clone(), k]),
                        )
                    });
                    when(active, seq([scale, update]))
                })
            })
        })
    });
    fb.build(body)
}

/// Build tiled syrk for `C: n×n`, `A: n×m` with tiles `(ty, tx)` and the
/// paper's parallel outer row-tile loop.
pub fn build_syrk(m: usize, n: usize, ty: i64, tx: i64) -> PrimFunc {
    build_syrk_par(m, n, ty, tx, 0)
}

/// The syrk code mold.
pub struct SyrkMold {
    size: ProblemSize,
    mode: SpaceMode,
    dims: (usize, usize),
    space: ConfigSpace,
}

impl SyrkMold {
    /// Paper-space mold for a problem-size class.
    pub fn new(size: ProblemSize) -> SyrkMold {
        SyrkMold::with_mode(size, SpaceMode::Paper)
    }

    /// Mold for a problem-size class under a space mode. Aggressive mode
    /// widens the tile lists and adds the `PAR` knob, whose value 2
    /// parallelizes the `k` reduction — a race the analyzer denies.
    pub fn with_mode(size: ProblemSize, mode: SpaceMode) -> SyrkMold {
        SyrkMold {
            size,
            mode,
            dims: syrk_dims(size),
            space: space_for_mode(crate::datasets::KernelName::Syrk, size, mode),
        }
    }
}

impl CodeMold for SyrkMold {
    fn name(&self) -> &str {
        "syrk"
    }

    fn size(&self) -> ProblemSize {
        self.size
    }

    fn mode(&self) -> SpaceMode {
        self.mode
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn prelint(&self, config: &Configuration) -> Vec<Diagnostic> {
        super::tile_prelint(config.int("P0"), config.int("P1"))
    }

    fn instantiate(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the syrk space"
        );
        let (m, n) = self.dims;
        let par_mode = config.get("PAR").and_then(|v| v.as_int()).unwrap_or(0);
        build_syrk_par(m, n, config.int("P0"), config.int("P1"), par_mode)
    }

    fn init_args(&self) -> Vec<NDArray> {
        let (m, n) = self.dims;
        let a = NDArray::from_fn(&[n, m], DTYPE, |i| {
            ((i[0] * i[1] + 1) % n) as f64 / n as f64
        });
        let c = NDArray::from_fn(&[n, n], DTYPE, |i| {
            ((i[0] * i[1] + 2) % m) as f64 / m as f64
        });
        vec![a, c]
    }

    fn reference_args(&self) -> Vec<Option<NDArray>> {
        let args = self.init_args();
        let c = crate::reference::syrk(ALPHA, BETA, &args[0], &args[1]);
        vec![None, Some(c)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_runtime::interp::execute;

    fn check(ty: i64, tx: i64) {
        let mold = SyrkMold::new(ProblemSize::Mini);
        let (m, n) = mold.dims;
        let f = build_syrk(m, n, ty, tx);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[1].clone().expect("C");
        assert!(
            args[1].allclose(&expect, 1e-9, 1e-9),
            "tiles ({ty},{tx}): max diff {}",
            args[1].max_abs_diff(&expect)
        );
    }

    #[test]
    fn untiled_matches_reference() {
        check(1, 1);
    }

    #[test]
    fn tiled_matches_reference() {
        check(6, 5);
    }

    #[test]
    fn nondivisible_tiles_match_reference() {
        check(7, 11);
    }

    fn check_par(ty: i64, tx: i64, par_mode: i64) {
        let mold = SyrkMold::new(ProblemSize::Mini);
        let (m, n) = mold.dims;
        let f = build_syrk_par(m, n, ty, tx, par_mode);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[1].clone().expect("C");
        assert!(
            args[1].allclose(&expect, 1e-9, 1e-9),
            "tiles ({ty},{tx}) par {par_mode}: max diff {}",
            args[1].max_abs_diff(&expect)
        );
    }

    #[test]
    fn degenerate_aggressive_tiles_match_reference() {
        // tile == extent, tile > extent (n = 20 at mini).
        check_par(20, 30, 0);
        check_par(40, 19, 1);
    }

    #[test]
    fn parallel_reduction_is_denied_by_analyzer() {
        let mold = SyrkMold::with_mode(ProblemSize::Mini, SpaceMode::Aggressive);
        let (m, n) = mold.dims;
        let f = build_syrk_par(m, n, 5, 5, 2);
        let report = tvm_tir::analyze::check(&f);
        let denial = report
            .denials()
            .find(|d| d.code.starts_with("TIR-RACE"))
            .expect("parallel k-reduction must trip the race analysis");
        assert!(
            tvm_tir::analyze::oracle::confirm_race(&f, denial),
            "race must be confirmed by the concrete oracle"
        );
        // The mold-level prelint alone does not catch races — that is the
        // analyzer's job — but the widened space must contain the knob.
        assert!(mold.space().get("PAR").is_some());
    }

    #[test]
    fn upper_triangle_untouched() {
        let mold = SyrkMold::new(ProblemSize::Mini);
        let (m, n) = mold.dims;
        let f = build_syrk(m, n, 5, 6);
        let input = mold.init_args()[1].clone();
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(args[1].get(&[i, j]), input.get(&[i, j]));
            }
        }
    }
}
