//! The `3mm` kernel: `E = A·B; F = C·D; G = E·F` through the full
//! TE → schedule → lower pipeline, with the paper's six split parameters.

use crate::datasets::{mm3_dims, Mm3Dims, ProblemSize};
use crate::molds::CodeMold;
use crate::spaces::{space_for_mode, SpaceMode};
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_te::{compute, placeholder, reduce_axis, sum, DType, Schedule, Tensor};
use tvm_tir::analyze::{prelint::Prelint, Diagnostic};
use tvm_tir::lower::lower;
use tvm_tir::PrimFunc;

use super::MatmulKnobs;

/// Element type of the PolyBench kernels (`DATA_TYPE double`).
pub const DTYPE: DType = DType::F64;

/// Build the 3mm TE graph; returns `(args, G, reduce axes of E/F/G)`.
fn build_graph(d: &Mm3Dims) -> ([Tensor; 4], Tensor, [tvm_te::IterVar; 3]) {
    let a = placeholder([d.n, d.l], DTYPE, "A");
    let b = placeholder([d.l, d.m], DTYPE, "B");
    let c = placeholder([d.m, d.o], DTYPE, "C");
    let dd = placeholder([d.o, d.p], DTYPE, "D");
    let k = reduce_axis(0, d.l as i64, "k");
    let e = compute([d.n, d.m], "E", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            std::slice::from_ref(&k),
        )
    });
    let l = reduce_axis(0, d.o as i64, "l");
    let f = compute([d.m, d.p], "F", |i| {
        sum(
            c.at(&[i[0].clone(), l.var_expr()]) * dd.at(&[l.var_expr(), i[1].clone()]),
            std::slice::from_ref(&l),
        )
    });
    let m = reduce_axis(0, d.m as i64, "m");
    let g = compute([d.n, d.p], "G", |i| {
        sum(
            e.at(&[i[0].clone(), m.var_expr()]) * f.at(&[m.var_expr(), i[1].clone()]),
            std::slice::from_ref(&m),
        )
    });
    ([a, b, c, dd], g, [k, l, m])
}

/// Lower 3mm with the six tile factors `(P0..P5)` and scheduling knobs
/// `kn` on the output stage `G`.
pub(crate) fn build_3mm_knobbed(d: &Mm3Dims, tiles: [i64; 6], kn: &MatmulKnobs) -> PrimFunc {
    let (args, g, [k, l, m]) = build_graph(d);
    let mut s = Schedule::create(std::slice::from_ref(&g));
    // Stage tensors: E and F are the first two stages.
    let e = s.stages[0].tensor.clone();
    let f = s.stages[1].tensor.clone();
    super::tile_matmul_stage(&mut s, &e, &k, tiles[0], tiles[1]);
    super::tile_matmul_stage(&mut s, &f, &l, tiles[2], tiles[3]);
    super::tile_matmul_stage_aggressive(&mut s, &g, &m, tiles[4], tiles[5], kn);
    let [a, b, c, dd] = args;
    lower(&s, &[a, b, c, dd, g], "mm3")
}

/// Lower 3mm with the six tile factors `(P0..P5)` of the paper's mold:
/// `P0/P1` tile stage `E`, `P2/P3` stage `F`, `P4/P5` stage `G`.
pub fn build_3mm(d: &Mm3Dims, tiles: [i64; 6]) -> PrimFunc {
    build_3mm_knobbed(d, tiles, &MatmulKnobs::neutral())
}

/// Lower 3mm with operator fusion via `compute_at`: `G` is tiled by
/// `(ty, tx)`; `E` is attached at `G`'s row-tile loop (computed once per
/// row tile) and, optionally, `F` at the column-tile loop (recomputed per
/// tile pair — the locality-vs-recompute trade the fusion ablation
/// measures).
pub fn build_3mm_fused(d: &Mm3Dims, ty: i64, tx: i64, attach_f: bool) -> PrimFunc {
    let (args, g, [_k, _l, m]) = build_graph(d);
    let mut s = Schedule::create(std::slice::from_ref(&g));
    let e = s.stages[0].tensor.clone();
    let f = s.stages[1].tensor.clone();
    let (y, x) = (g.axis(0), g.axis(1));
    let (yo, yi) = s.split(&g, &y, ty);
    let (xo, xi) = s.split(&g, &x, tx);
    s.reorder(&g, &[yo.clone(), xo.clone(), m.clone(), yi, xi]);
    s.compute_at(&e, &g, &yo);
    if attach_f {
        s.compute_at(&f, &g, &xo);
    }
    let [a, b, c, dd] = args;
    lower(&s, &[a, b, c, dd, g], "mm3_fused")
}

/// The 3mm code mold.
pub struct Mm3Mold {
    size: ProblemSize,
    mode: SpaceMode,
    dims: Mm3Dims,
    space: ConfigSpace,
}

impl Mm3Mold {
    /// Paper-space mold for a problem-size class.
    pub fn new(size: ProblemSize) -> Mm3Mold {
        Mm3Mold::with_mode(size, SpaceMode::Paper)
    }

    /// Mold for a problem-size class under a space mode.
    pub fn with_mode(size: ProblemSize, mode: SpaceMode) -> Mm3Mold {
        Mm3Mold {
            size,
            mode,
            dims: mm3_dims(size),
            space: space_for_mode(crate::datasets::KernelName::Mm3, size, mode),
        }
    }

    /// Kernel dimensions.
    pub fn dims(&self) -> &Mm3Dims {
        &self.dims
    }
}

impl CodeMold for Mm3Mold {
    fn name(&self) -> &str {
        "3mm"
    }

    fn size(&self) -> ProblemSize {
        self.size
    }

    fn mode(&self) -> SpaceMode {
        self.mode
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn prelint(&self, config: &Configuration) -> Vec<Diagnostic> {
        let mut p = Prelint::new();
        let kn = MatmulKnobs::from_config(config);
        // Stages E and F use the plain (knob-free) pattern.
        p.split("y", config.int("P0")).split("x", config.int("P1"));
        p.split("y", config.int("P2")).split("x", config.int("P3"));
        super::matmul_stage_prelint(&mut p, config.int("P4"), config.int("P5"), &kn);
        p.finish()
    }

    fn instantiate(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the 3mm space"
        );
        let tiles = [
            config.int("P0"),
            config.int("P1"),
            config.int("P2"),
            config.int("P3"),
            config.int("P4"),
            config.int("P5"),
        ];
        let kn = MatmulKnobs::from_config(config);
        build_3mm_knobbed(&self.dims, tiles, &kn)
    }

    fn init_args(&self) -> Vec<NDArray> {
        let [a, b, c, d] = crate::reference::mm3_inputs(&self.dims, DTYPE);
        let g = NDArray::zeros(&[self.dims.n, self.dims.p], DTYPE);
        vec![a, b, c, d, g]
    }

    fn reference_args(&self) -> Vec<Option<NDArray>> {
        let [a, b, c, d] = crate::reference::mm3_inputs(&self.dims, DTYPE);
        let g = crate::reference::mm3(&a, &b, &c, &d);
        vec![None, None, None, None, Some(g)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_runtime::interp::execute;

    #[test]
    fn graph_shapes() {
        let d = mm3_dims(ProblemSize::Mini);
        let (_, g, _) = build_graph(&d);
        assert_eq!(g.shape(), &[d.n, d.p]);
    }

    #[test]
    fn untiled_equals_reference() {
        let mold = Mm3Mold::new(ProblemSize::Mini);
        let cfg = Configuration::new(
            (0..6).map(|i| format!("P{i}")).collect(),
            vec![configspace::ParamValue::Int(1); 6],
        );
        let f = mold.instantiate(&cfg);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args();
        let g = expect[4].as_ref().expect("G");
        assert!(
            args[4].allclose(g, 1e-9, 1e-9),
            "max diff {}",
            args[4].max_abs_diff(g)
        );
    }

    #[test]
    fn tiled_equals_reference() {
        let mold = Mm3Mold::new(ProblemSize::Mini);
        // Valid divisor picks for mini dims (m=20, n=16, p=24).
        let cfg = Configuration::new(
            (0..6).map(|i| format!("P{i}")).collect(),
            [4i64, 8, 6, 5, 12, 2]
                .iter()
                .map(|&v| configspace::ParamValue::Int(v))
                .collect(),
        );
        assert!(mold.space().validate(&cfg), "pick valid divisors");
        let f = mold.instantiate(&cfg);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args();
        let g = expect[4].as_ref().expect("G");
        assert!(
            args[4].allclose(g, 1e-9, 1e-9),
            "max diff {}",
            args[4].max_abs_diff(g)
        );
    }

    #[test]
    fn lowered_structure_has_three_update_nests() {
        let mold = Mm3Mold::new(ProblemSize::Mini);
        let f = mold.instantiate(&mold.baseline_configuration());
        // 3 init stores + 3 update stores.
        assert_eq!(f.body.store_count(), 6);
        // E and F are internal allocations; params are A,B,C,D,G.
        assert_eq!(f.params.len(), 5);
        assert_eq!(f.allocs.len(), 2);
    }

    #[test]
    fn fused_3mm_matches_reference() {
        let mold = Mm3Mold::new(ProblemSize::Mini);
        for attach_f in [false, true] {
            let f = build_3mm_fused(mold.dims(), 4, 6, attach_f);
            let mut args = mold.init_args();
            execute(&f, &mut args).expect("run");
            let expect = mold.reference_args();
            let g = expect[4].as_ref().expect("G");
            assert!(
                args[4].allclose(g, 1e-9, 1e-9),
                "attach_f={attach_f}: max diff {}",
                args[4].max_abs_diff(g)
            );
        }
    }

    /// Run an aggressive config (tiles + knobs on stage G) against the
    /// reference output.
    fn check_aggressive(tiles: [i64; 6], knobs: [i64; 5]) {
        check_aggressive_at(ProblemSize::Mini, tiles, knobs);
    }

    fn check_aggressive_at(size: ProblemSize, tiles: [i64; 6], knobs: [i64; 5]) {
        let mold = Mm3Mold::with_mode(size, SpaceMode::Aggressive);
        let mut names: Vec<String> = (0..6).map(|i| format!("P{i}")).collect();
        names.extend(crate::spaces::KNOB_NAMES.iter().map(|s| s.to_string()));
        let vals: Vec<configspace::ParamValue> = tiles
            .iter()
            .chain(knobs.iter())
            .map(|&v| configspace::ParamValue::Int(v))
            .collect();
        let cfg = Configuration::new(names, vals);
        assert!(mold.space().validate(&cfg), "{tiles:?}/{knobs:?} invalid");
        assert!(
            mold.prelint(&cfg).is_empty(),
            "{tiles:?}/{knobs:?} prelint-denied"
        );
        let f = mold.instantiate(&cfg);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args();
        let g = expect[4].as_ref().expect("G");
        assert!(
            args[4].allclose(g, 1e-9, 1e-9),
            "{tiles:?}/{knobs:?}: max diff {}",
            args[4].max_abs_diff(g)
        );
    }

    #[test]
    fn nondivisor_and_overshooting_tiles_match_reference() {
        // Mini dims n=16, l=18, m=20, o=22, p=24. Every pick is either a
        // non-divisor of its loop extent or exceeds it outright.
        check_aggressive([19, 15, 23, 16, 32, 15], [0; 5]);
    }

    #[test]
    fn small_size_aggressive_tiles_match_reference() {
        // Small dims n=40, l=50, m=60, o=70, p=80: overshooting tiles on
        // P0/P2 (64 > 60, 128 > 80), non-divisors everywhere else.
        check_aggressive_at(ProblemSize::Small, [64, 39, 128, 59, 79, 16], [0; 5]);
    }

    #[test]
    fn knobbed_output_stage_matches_reference() {
        // Reorder + vectorize + unroll on stage G, serial execution.
        check_aggressive([4, 8, 6, 5, 12, 8], [1, 0, 4, 1, 1]);
        // Reduction innermost on G with a legal outer fuse.
        check_aggressive([4, 8, 6, 5, 12, 2], [2, 1, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "not in the 3mm space")]
    fn foreign_config_rejected() {
        let mold = Mm3Mold::new(ProblemSize::Mini);
        let cfg = Configuration::new(
            (0..6).map(|i| format!("P{i}")).collect(),
            vec![configspace::ParamValue::Int(7); 6], // 7 divides nothing here
        );
        let _ = mold.instantiate(&cfg);
    }
}
