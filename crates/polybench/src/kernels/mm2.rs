//! PolyBench `2mm` (`D' = α·(A·B)·C + β·D`) — extension kernel with four
//! tile parameters (two matmul stages).

use crate::datasets::{mm2_dims, ProblemSize};
use crate::molds::CodeMold;
use crate::spaces::{space_for_mode, SpaceMode};
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_te::{compute, placeholder, reduce_axis, sum, DType, PrimExpr, Schedule};
use tvm_tir::analyze::{prelint::Prelint, Diagnostic};
use tvm_tir::lower::lower;
use tvm_tir::PrimFunc;

use super::MatmulKnobs;

/// Element type (`DATA_TYPE double`).
pub const DTYPE: DType = DType::F64;
/// PolyBench's `alpha`.
pub const ALPHA: f64 = 1.5;
/// PolyBench's `beta`.
pub const BETA: f64 = 1.2;

/// Build 2mm with tiles `(t0, t1)` on stage `E = A·B`, `(t2, t3)` on
/// stage `F = E·C`, and scheduling knobs `kn` on stage `F`.
pub(crate) fn build_2mm_knobbed(
    ni: usize,
    nj: usize,
    nk: usize,
    nl: usize,
    tiles: [i64; 4],
    kn: &MatmulKnobs,
) -> PrimFunc {
    let a = placeholder([ni, nk], DTYPE, "A");
    let b = placeholder([nk, nj], DTYPE, "B");
    let c = placeholder([nj, nl], DTYPE, "C");
    let d = placeholder([ni, nl], DTYPE, "D");
    let k = reduce_axis(0, nk as i64, "k");
    let e = compute([ni, nj], "E", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            std::slice::from_ref(&k),
        )
    });
    let j = reduce_axis(0, nj as i64, "j");
    let f = compute([ni, nl], "F", |i| {
        sum(
            e.at(&[i[0].clone(), j.var_expr()]) * c.at(&[j.var_expr(), i[1].clone()]),
            std::slice::from_ref(&j),
        )
    });
    let out = compute([ni, nl], "Out", |i| {
        PrimExpr::FloatImm(ALPHA, DTYPE) * f.at(&[i[0].clone(), i[1].clone()])
            + PrimExpr::FloatImm(BETA, DTYPE) * d.at(&[i[0].clone(), i[1].clone()])
    });
    let mut s = Schedule::create(std::slice::from_ref(&out));
    let et = s.stages[0].tensor.clone();
    let ft = s.stages[1].tensor.clone();
    super::tile_matmul_stage(&mut s, &et, &k, tiles[0], tiles[1]);
    super::tile_matmul_stage_aggressive(&mut s, &ft, &j, tiles[2], tiles[3], kn);
    lower(&s, &[a, b, c, d, out], "mm2")
}

/// Build 2mm with tiles `(t0, t1)` on stage `E = A·B` and `(t2, t3)` on
/// stage `F = E·C` (the paper schedule — neutral knobs).
pub fn build_2mm(ni: usize, nj: usize, nk: usize, nl: usize, tiles: [i64; 4]) -> PrimFunc {
    build_2mm_knobbed(ni, nj, nk, nl, tiles, &MatmulKnobs::neutral())
}

/// The 2mm code mold.
pub struct Mm2Mold {
    size: ProblemSize,
    mode: SpaceMode,
    dims: (usize, usize, usize, usize),
    space: ConfigSpace,
}

impl Mm2Mold {
    /// Paper-space mold for a problem-size class.
    pub fn new(size: ProblemSize) -> Mm2Mold {
        Mm2Mold::with_mode(size, SpaceMode::Paper)
    }

    /// Mold for a problem-size class under a space mode.
    pub fn with_mode(size: ProblemSize, mode: SpaceMode) -> Mm2Mold {
        Mm2Mold {
            size,
            mode,
            dims: mm2_dims(size),
            space: space_for_mode(crate::datasets::KernelName::Mm2, size, mode),
        }
    }
}

impl CodeMold for Mm2Mold {
    fn name(&self) -> &str {
        "2mm"
    }

    fn size(&self) -> ProblemSize {
        self.size
    }

    fn mode(&self) -> SpaceMode {
        self.mode
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn prelint(&self, config: &Configuration) -> Vec<Diagnostic> {
        let mut p = Prelint::new();
        let kn = MatmulKnobs::from_config(config);
        // Stage E is always scheduled with the plain (knob-free) pattern.
        p.split("y", config.int("P0")).split("x", config.int("P1"));
        super::matmul_stage_prelint(&mut p, config.int("P2"), config.int("P3"), &kn);
        p.finish()
    }

    fn instantiate(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the 2mm space"
        );
        let (ni, nj, nk, nl) = self.dims;
        let tiles = [
            config.int("P0"),
            config.int("P1"),
            config.int("P2"),
            config.int("P3"),
        ];
        let kn = MatmulKnobs::from_config(config);
        build_2mm_knobbed(ni, nj, nk, nl, tiles, &kn)
    }

    fn init_args(&self) -> Vec<NDArray> {
        let (ni, nj, nk, nl) = self.dims;
        let a = NDArray::from_fn(&[ni, nk], DTYPE, |i| {
            ((i[0] * i[1] + 1) % ni) as f64 / ni as f64
        });
        let b = NDArray::from_fn(&[nk, nj], DTYPE, |i| {
            ((i[0] * (i[1] + 1)) % nj) as f64 / nj as f64
        });
        let c = NDArray::from_fn(&[nj, nl], DTYPE, |i| {
            ((i[0] * (i[1] + 3) + 1) % nl) as f64 / nl as f64
        });
        let d = NDArray::from_fn(&[ni, nl], DTYPE, |i| {
            (i[0] * (i[1] + 2) % nk) as f64 / nk as f64
        });
        let out = NDArray::zeros(&[ni, nl], DTYPE);
        vec![a, b, c, d, out]
    }

    fn reference_args(&self) -> Vec<Option<NDArray>> {
        let args = self.init_args();
        let out = crate::reference::mm2(ALPHA, &args[0], &args[1], &args[2], BETA, &args[3]);
        vec![None, None, None, None, Some(out)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_runtime::interp::execute;

    #[test]
    fn mm2_matches_reference() {
        let mold = Mm2Mold::new(ProblemSize::Mini);
        let f = mold.instantiate(&mold.baseline_configuration());
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[4].clone().expect("out");
        assert!(
            args[4].allclose(&expect, 1e-9, 1e-9),
            "max diff {}",
            args[4].max_abs_diff(&expect)
        );
    }

    #[test]
    fn four_tile_parameters() {
        let mold = Mm2Mold::new(ProblemSize::Mini);
        assert_eq!(mold.space().len(), 4);
    }

    /// Run an aggressive tile pick (neutral knobs) against the reference.
    fn check_aggressive_tiles(tiles: [i64; 4]) {
        check_aggressive_tiles_at(ProblemSize::Mini, tiles);
    }

    fn check_aggressive_tiles_at(size: ProblemSize, tiles: [i64; 4]) {
        let mold = Mm2Mold::with_mode(size, SpaceMode::Aggressive);
        let mut names: Vec<String> = (0..4).map(|i| format!("P{i}")).collect();
        names.extend(crate::spaces::KNOB_NAMES.iter().map(|s| s.to_string()));
        let mut vals: Vec<configspace::ParamValue> = tiles
            .iter()
            .map(|&v| configspace::ParamValue::Int(v))
            .collect();
        vals.extend(std::iter::repeat_n(configspace::ParamValue::Int(0), 5));
        let cfg = Configuration::new(names, vals);
        assert!(mold.space().validate(&cfg), "{tiles:?} invalid");
        assert!(mold.prelint(&cfg).is_empty(), "{tiles:?} prelint-denied");
        let f = mold.instantiate(&cfg);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[4].clone().expect("out");
        assert!(
            args[4].allclose(&expect, 1e-9, 1e-9),
            "{tiles:?}: max diff {}",
            args[4].max_abs_diff(&expect)
        );
    }

    #[test]
    fn nondivisor_tiles_match_reference() {
        // Mini dims (16, 18, 22, 24): 15 ∤ 16, 4 ∤ 18, 16 ∤ 24.
        check_aggressive_tiles([15, 4, 8, 16]);
    }

    #[test]
    fn degenerate_tiles_match_reference() {
        // tile == extent on P0, tile > extent on P2.
        check_aggressive_tiles([16, 9, 32, 12]);
    }

    #[test]
    fn small_size_aggressive_tiles_match_reference() {
        // Small dims (40, 50, 70, 80): every pick is a non-divisor of
        // its loop extent — guarded tails on all four split axes.
        check_aggressive_tiles_at(ProblemSize::Small, [16, 16, 32, 32]);
        // tile == extent (P0), tile > extent (P1, P2), extent − 1 (P3).
        check_aggressive_tiles_at(ProblemSize::Small, [40, 64, 80, 79]);
    }
}
