//! PolyBench `gemm` (`C' = α·A·B + β·C`) — extension kernel showing the
//! mold machinery generalizes beyond the paper's three benchmarks.

use crate::datasets::{gemm_dims, ProblemSize};
use crate::molds::CodeMold;
use crate::spaces::space_for;
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_te::{compute, placeholder, reduce_axis, sum, DType, PrimExpr, Schedule};
use tvm_tir::lower::lower;
use tvm_tir::PrimFunc;

/// Element type (`DATA_TYPE double`).
pub const DTYPE: DType = DType::F64;
/// PolyBench's `alpha`.
pub const ALPHA: f64 = 1.5;
/// PolyBench's `beta`.
pub const BETA: f64 = 1.2;

/// Build gemm with tiles `(ty, tx)` on the multiplication stage.
pub fn build_gemm(ni: usize, nj: usize, nk: usize, ty: i64, tx: i64) -> PrimFunc {
    let a = placeholder([ni, nk], DTYPE, "A");
    let b = placeholder([nk, nj], DTYPE, "B");
    let c = placeholder([ni, nj], DTYPE, "C");
    let k = reduce_axis(0, nk as i64, "k");
    let t = compute([ni, nj], "T", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            std::slice::from_ref(&k),
        )
    });
    let out = compute([ni, nj], "Out", |i| {
        PrimExpr::FloatImm(ALPHA, DTYPE) * t.at(&[i[0].clone(), i[1].clone()])
            + PrimExpr::FloatImm(BETA, DTYPE) * c.at(&[i[0].clone(), i[1].clone()])
    });
    let mut s = Schedule::create(std::slice::from_ref(&out));
    let tt = s.stages[0].tensor.clone();
    super::tile_matmul_stage(&mut s, &tt, &k, ty, tx);
    lower(&s, &[a, b, c, out], "gemm")
}

/// The gemm code mold.
pub struct GemmMold {
    size: ProblemSize,
    dims: (usize, usize, usize),
    space: ConfigSpace,
}

impl GemmMold {
    /// Mold for a problem-size class.
    pub fn new(size: ProblemSize) -> GemmMold {
        GemmMold {
            size,
            dims: gemm_dims(size),
            space: space_for(crate::datasets::KernelName::Gemm, size),
        }
    }
}

impl CodeMold for GemmMold {
    fn name(&self) -> &str {
        "gemm"
    }

    fn size(&self) -> ProblemSize {
        self.size
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn instantiate(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the gemm space"
        );
        let (ni, nj, nk) = self.dims;
        build_gemm(ni, nj, nk, config.int("P0"), config.int("P1"))
    }

    fn init_args(&self) -> Vec<NDArray> {
        let (ni, nj, nk) = self.dims;
        let a = NDArray::from_fn(&[ni, nk], DTYPE, |i| {
            (i[0] * i[1] + 1) as f64 % ni as f64 / ni as f64
        });
        let b = NDArray::from_fn(&[nk, nj], DTYPE, |i| {
            (i[0] * (i[1] + 1)) as f64 % nj as f64 / nj as f64
        });
        let c = NDArray::from_fn(&[ni, nj], DTYPE, |i| {
            (i[0] * (i[1] + 2)) as f64 % nj as f64 / nj as f64
        });
        let out = NDArray::zeros(&[ni, nj], DTYPE);
        vec![a, b, c, out]
    }

    fn reference_args(&self) -> Vec<Option<NDArray>> {
        let args = self.init_args();
        let out = crate::reference::gemm(ALPHA, &args[0], &args[1], BETA, &args[2]);
        vec![None, None, None, Some(out)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_runtime::interp::execute;

    #[test]
    fn gemm_matches_reference() {
        let mold = GemmMold::new(ProblemSize::Mini);
        let cfg = mold.baseline_configuration();
        let f = mold.instantiate(&cfg);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[3].clone().expect("out");
        assert!(
            args[3].allclose(&expect, 1e-9, 1e-9),
            "max diff {}",
            args[3].max_abs_diff(&expect)
        );
    }

    #[test]
    fn space_uses_divisors_of_output_dims() {
        let mold = GemmMold::new(ProblemSize::Mini); // (20, 25, 30)
        assert_eq!(mold.space().get("P0").unwrap().cardinality(), Some(6)); // div(20)
        assert_eq!(mold.space().get("P1").unwrap().cardinality(), Some(3)); // div(25)
    }
}
