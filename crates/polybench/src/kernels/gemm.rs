//! PolyBench `gemm` (`C' = α·A·B + β·C`) — extension kernel showing the
//! mold machinery generalizes beyond the paper's three benchmarks.

use crate::datasets::{gemm_dims, ProblemSize};
use crate::molds::CodeMold;
use crate::spaces::{space_for_mode, SpaceMode};
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_te::{compute, placeholder, reduce_axis, sum, DType, PrimExpr, Schedule};
use tvm_tir::analyze::{prelint::Prelint, Diagnostic};
use tvm_tir::lower::lower;
use tvm_tir::PrimFunc;

use super::MatmulKnobs;

/// Element type (`DATA_TYPE double`).
pub const DTYPE: DType = DType::F64;
/// PolyBench's `alpha`.
pub const ALPHA: f64 = 1.5;
/// PolyBench's `beta`.
pub const BETA: f64 = 1.2;

/// Build gemm with tiles `(ty, tx)` and scheduling knobs `kn` on the
/// multiplication stage.
pub(crate) fn build_gemm_knobbed(
    ni: usize,
    nj: usize,
    nk: usize,
    ty: i64,
    tx: i64,
    kn: &MatmulKnobs,
) -> PrimFunc {
    let a = placeholder([ni, nk], DTYPE, "A");
    let b = placeholder([nk, nj], DTYPE, "B");
    let c = placeholder([ni, nj], DTYPE, "C");
    let k = reduce_axis(0, nk as i64, "k");
    let t = compute([ni, nj], "T", |i| {
        sum(
            a.at(&[i[0].clone(), k.var_expr()]) * b.at(&[k.var_expr(), i[1].clone()]),
            std::slice::from_ref(&k),
        )
    });
    let out = compute([ni, nj], "Out", |i| {
        PrimExpr::FloatImm(ALPHA, DTYPE) * t.at(&[i[0].clone(), i[1].clone()])
            + PrimExpr::FloatImm(BETA, DTYPE) * c.at(&[i[0].clone(), i[1].clone()])
    });
    let mut s = Schedule::create(std::slice::from_ref(&out));
    let tt = s.stages[0].tensor.clone();
    super::tile_matmul_stage_aggressive(&mut s, &tt, &k, ty, tx, kn);
    lower(&s, &[a, b, c, out], "gemm")
}

/// Build gemm with tiles `(ty, tx)` on the multiplication stage (the
/// paper schedule — neutral knobs).
pub fn build_gemm(ni: usize, nj: usize, nk: usize, ty: i64, tx: i64) -> PrimFunc {
    build_gemm_knobbed(ni, nj, nk, ty, tx, &MatmulKnobs::neutral())
}

/// The gemm code mold.
pub struct GemmMold {
    size: ProblemSize,
    mode: SpaceMode,
    dims: (usize, usize, usize),
    space: ConfigSpace,
}

impl GemmMold {
    /// Paper-space mold for a problem-size class.
    pub fn new(size: ProblemSize) -> GemmMold {
        GemmMold::with_mode(size, SpaceMode::Paper)
    }

    /// Mold for a problem-size class under a space mode.
    pub fn with_mode(size: ProblemSize, mode: SpaceMode) -> GemmMold {
        GemmMold {
            size,
            mode,
            dims: gemm_dims(size),
            space: space_for_mode(crate::datasets::KernelName::Gemm, size, mode),
        }
    }
}

impl CodeMold for GemmMold {
    fn name(&self) -> &str {
        "gemm"
    }

    fn size(&self) -> ProblemSize {
        self.size
    }

    fn mode(&self) -> SpaceMode {
        self.mode
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn prelint(&self, config: &Configuration) -> Vec<Diagnostic> {
        let mut p = Prelint::new();
        let kn = MatmulKnobs::from_config(config);
        super::matmul_stage_prelint(&mut p, config.int("P0"), config.int("P1"), &kn);
        p.finish()
    }

    fn instantiate(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the gemm space"
        );
        let (ni, nj, nk) = self.dims;
        let kn = MatmulKnobs::from_config(config);
        build_gemm_knobbed(ni, nj, nk, config.int("P0"), config.int("P1"), &kn)
    }

    fn init_args(&self) -> Vec<NDArray> {
        let (ni, nj, nk) = self.dims;
        let a = NDArray::from_fn(&[ni, nk], DTYPE, |i| {
            (i[0] * i[1] + 1) as f64 % ni as f64 / ni as f64
        });
        let b = NDArray::from_fn(&[nk, nj], DTYPE, |i| {
            (i[0] * (i[1] + 1)) as f64 % nj as f64 / nj as f64
        });
        let c = NDArray::from_fn(&[ni, nj], DTYPE, |i| {
            (i[0] * (i[1] + 2)) as f64 % nj as f64 / nj as f64
        });
        let out = NDArray::zeros(&[ni, nj], DTYPE);
        vec![a, b, c, out]
    }

    fn reference_args(&self) -> Vec<Option<NDArray>> {
        let args = self.init_args();
        let out = crate::reference::gemm(ALPHA, &args[0], &args[1], BETA, &args[2]);
        vec![None, None, None, Some(out)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_runtime::interp::execute;

    #[test]
    fn gemm_matches_reference() {
        let mold = GemmMold::new(ProblemSize::Mini);
        let cfg = mold.baseline_configuration();
        let f = mold.instantiate(&cfg);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[3].clone().expect("out");
        assert!(
            args[3].allclose(&expect, 1e-9, 1e-9),
            "max diff {}",
            args[3].max_abs_diff(&expect)
        );
    }

    #[test]
    fn space_uses_divisors_of_output_dims() {
        let mold = GemmMold::new(ProblemSize::Mini); // (20, 25, 30)
        assert_eq!(mold.space().get("P0").unwrap().cardinality(), Some(6)); // div(20)
        assert_eq!(mold.space().get("P1").unwrap().cardinality(), Some(3)); // div(25)
    }

    /// Run one aggressive config against the reference output.
    fn check_aggressive(ty: i64, tx: i64, knobs: [i64; 5]) {
        check_aggressive_at(ProblemSize::Mini, ty, tx, knobs);
    }

    fn check_aggressive_at(size: ProblemSize, ty: i64, tx: i64, knobs: [i64; 5]) {
        let mold = GemmMold::with_mode(size, SpaceMode::Aggressive);
        let cfg = Configuration::new(
            vec![
                "P0".into(),
                "P1".into(),
                "ORDER".into(),
                "FUSE".into(),
                "VEC".into(),
                "PAR".into(),
                "UNROLL".into(),
            ],
            [ty, tx, knobs[0], knobs[1], knobs[2], knobs[3], knobs[4]]
                .iter()
                .map(|&v| configspace::ParamValue::Int(v))
                .collect(),
        );
        assert!(mold.space().validate(&cfg), "({ty},{tx},{knobs:?}) invalid");
        assert!(
            mold.prelint(&cfg).is_empty(),
            "({ty},{tx},{knobs:?}) prelint-denied"
        );
        let f = mold.instantiate(&cfg);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[3].clone().expect("out");
        assert!(
            args[3].allclose(&expect, 1e-9, 1e-9),
            "({ty},{tx},{knobs:?}): max diff {}",
            args[3].max_abs_diff(&expect)
        );
    }

    #[test]
    fn nondivisor_tiles_match_reference() {
        // ni = 20, nj = 25: 16 ∤ 20, 8 ∤ 25 — guarded tails both axes.
        check_aggressive(16, 8, [0, 0, 0, 0, 0]);
    }

    #[test]
    fn tile_equals_extent_matches_reference() {
        check_aggressive(20, 25, [0, 0, 0, 0, 0]);
    }

    #[test]
    fn tile_exceeds_extent_matches_reference() {
        // 2n tiles: a single guarded mega-tile on each axis.
        check_aggressive(40, 50, [0, 0, 0, 0, 0]);
    }

    #[test]
    fn small_size_aggressive_tiles_match_reference() {
        // Small dims (60, 70, 80): 16 ∤ 60 and 32 ∤ 70 — guarded tails
        // on both axes at the larger extents...
        check_aggressive_at(ProblemSize::Small, 16, 32, [0; 5]);
        // ...and tile == extent / tile > extent survive at small, too.
        check_aggressive_at(ProblemSize::Small, 60, 128, [0; 5]);
    }

    #[test]
    fn knobbed_schedules_match_reference() {
        // Reordered + vectorized + unrolled, serial.
        check_aggressive(5, 8, [1, 0, 4, 1, 1]);
        // Reduction innermost; vectorized axis is demoted to serial.
        check_aggressive(4, 5, [2, 0, 2, 0, 0]);
        // Legal fuse of the two outermost tile loops.
        check_aggressive(5, 5, [0, 1, 0, 0, 0]);
        // Legal fuse of yo with k under ORDER == 1 — runs serial because
        // the fused axis carries the reduction.
        check_aggressive(4, 8, [1, 2, 0, 1, 0]);
    }

    #[test]
    fn prelint_denies_illegal_gemm_schedules() {
        use tvm_tir::analyze::codes;
        let mold = GemmMold::with_mode(ProblemSize::Mini, SpaceMode::Aggressive);
        let cfg = |p0: i64, p1: i64, knobs: [i64; 5]| {
            Configuration::new(
                vec![
                    "P0".into(),
                    "P1".into(),
                    "ORDER".into(),
                    "FUSE".into(),
                    "VEC".into(),
                    "PAR".into(),
                    "UNROLL".into(),
                ],
                [p0, p1, knobs[0], knobs[1], knobs[2], knobs[3], knobs[4]]
                    .iter()
                    .map(|&v| configspace::ParamValue::Int(v))
                    .collect(),
            )
        };
        let codes_of = |c: &Configuration| -> Vec<&'static str> {
            mold.prelint(c).iter().map(|d| d.code).collect()
        };
        assert_eq!(codes_of(&cfg(0, 5, [0; 5])), vec![codes::TRIP_ZERO]);
        assert_eq!(codes_of(&cfg(4, 5, [0, 0, 64, 0, 0])), vec![codes::VEC_OVER]);
        assert_eq!(
            codes_of(&cfg(4, 5, [0, 2, 0, 0, 0])),
            vec![codes::FUSE_ILLEGAL],
            "fuse(yo, k) is non-adjacent under ORDER == 0"
        );
        assert!(
            codes_of(&cfg(4, 5, [1, 2, 0, 0, 0])).is_empty(),
            "fuse(yo, k) is adjacent under ORDER == 1"
        );
    }
}
