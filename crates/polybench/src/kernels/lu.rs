//! LU decomposition without pivoting, as a tiled PolyBench (Doolittle)
//! code mold.
//!
//! PolyBench's `lu` has loop-carried dependences that pure tensor
//! expressions cannot express, so the mold builds TIR directly (the same
//! IR the TE pipeline lowers to), keeping the C benchmark's `(i, j, k)`
//! loop structure with the reduction innermost and the paper's two tile
//! parameters on `i` and `j`:
//!
//! ```text
//! for io, jo, ii, ji (i tiled by P0, j tiled by P1):
//!   if j < i:                       # L part
//!     for k in 0..j:  A[i,j] -= A[i,k] * A[k,j]
//!     A[i,j] /= A[j,j]
//!   else:                           # U part
//!     for k in 0..i:  A[i,j] -= A[i,k] * A[k,j]
//! ```
//!
//! Block-row-major execution is valid for any `(P0, P1)`: element
//! `(i, j)` depends only on elements `(i', j')` with `i' ≤ i` and
//! `j' ≤ j`, an order the tiled nest refines (every tiled configuration
//! is verified against the reference factorization in this module's
//! tests).

use crate::datasets::{factorization_n, ProblemSize};
use crate::molds::CodeMold;
use crate::spaces::{space_for_mode, SpaceMode};
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_te::ops::cmp;
use tvm_te::{placeholder, DType, PrimExpr};
use tvm_tir::analyze::Diagnostic;
use tvm_tir::builder::{if_else, seq, ser, store, when, FuncBuilder};
use tvm_tir::PrimFunc;

/// Element type (`DATA_TYPE double`).
pub const DTYPE: DType = DType::F64;

/// Build the tiled PolyBench LU function for order `n` with tile sizes
/// `(ty, tx)` on the `i`/`j` loops.
pub fn build_lu(n: usize, ty: i64, tx: i64) -> PrimFunc {
    assert!(ty >= 1 && tx >= 1);
    let n_i = n as i64;
    let a = placeholder([n, n], DTYPE, "A");
    let mut fb = FuncBuilder::new("lu");
    let ab = fb.param(&a);

    let tiles_y = n_i.div_euclid(ty) + i64::from(n_i % ty != 0);
    let tiles_x = n_i.div_euclid(tx) + i64::from(n_i % tx != 0);

    let body = ser("io", tiles_y, |io| {
        let (a, ab) = (a.clone(), ab.clone());
        ser("jo", tiles_x, move |jo| {
            let (a, ab) = (a.clone(), ab.clone());
            let io = io.clone();
            ser("ii", ty, move |ii| {
                let (a, ab) = (a.clone(), ab.clone());
                let (io, jo) = (io.clone(), jo.clone());
                ser("ji", tx, move |ji| {
                    let i = io * ty + ii.clone();
                    let j = jo * tx + ji;
                    let in_bounds = cmp::and(
                        cmp::lt(i.clone(), PrimExpr::from(n_i)),
                        cmp::lt(j.clone(), PrimExpr::from(n_i)),
                    );
                    // L part (j < i): partial dot product then divide.
                    let (ic, jc) = (i.clone(), j.clone());
                    let (a1, ab1) = (a.clone(), ab.clone());
                    let l_reduce = ser("k", n_i, move |k| {
                        when(
                            cmp::lt(k.clone(), jc.clone()),
                            store(
                                &ab1,
                                &[ic.clone(), jc.clone()],
                                a1.at(&[ic.clone(), jc.clone()])
                                    - a1.at(&[ic.clone(), k.clone()]) * a1.at(&[k, jc.clone()]),
                            ),
                        )
                    });
                    let l_div = store(
                        &ab,
                        &[i.clone(), j.clone()],
                        a.at(&[i.clone(), j.clone()]) / a.at(&[j.clone(), j.clone()]),
                    );
                    // U part (j >= i): partial dot product only.
                    let (ic, jc) = (i.clone(), j.clone());
                    let (a2, ab2) = (a.clone(), ab.clone());
                    let u_reduce = ser("k", n_i, move |k| {
                        when(
                            cmp::lt(k.clone(), ic.clone()),
                            store(
                                &ab2,
                                &[ic.clone(), jc.clone()],
                                a2.at(&[ic.clone(), jc.clone()])
                                    - a2.at(&[ic.clone(), k.clone()]) * a2.at(&[k, jc.clone()]),
                            ),
                        )
                    });
                    when(
                        in_bounds,
                        if_else(
                            cmp::lt(j.clone(), i.clone()),
                            seq([l_reduce, l_div]),
                            u_reduce,
                        ),
                    )
                })
            })
        })
    });
    fb.build(body)
}

/// The LU code mold.
pub struct LuMold {
    size: ProblemSize,
    mode: SpaceMode,
    n: usize,
    space: ConfigSpace,
}

impl LuMold {
    /// Paper-space mold for a problem-size class.
    pub fn new(size: ProblemSize) -> LuMold {
        LuMold::with_mode(size, SpaceMode::Paper)
    }

    /// Mold for a problem-size class under a space mode. Aggressive mode
    /// widens the tile lists (non-divisor tails are already guarded by
    /// the builder); tile factor 0 is denied by the prelint.
    pub fn with_mode(size: ProblemSize, mode: SpaceMode) -> LuMold {
        LuMold {
            size,
            mode,
            n: factorization_n(size),
            space: space_for_mode(crate::datasets::KernelName::Lu, size, mode),
        }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl CodeMold for LuMold {
    fn name(&self) -> &str {
        "lu"
    }

    fn size(&self) -> ProblemSize {
        self.size
    }

    fn mode(&self) -> SpaceMode {
        self.mode
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn prelint(&self, config: &Configuration) -> Vec<Diagnostic> {
        super::tile_prelint(config.int("P0"), config.int("P1"))
    }

    fn instantiate(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the lu space"
        );
        build_lu(self.n, config.int("P0"), config.int("P1"))
    }

    fn init_args(&self) -> Vec<NDArray> {
        vec![crate::reference::spd_matrix(self.n, DTYPE)]
    }

    fn reference_args(&self) -> Vec<Option<NDArray>> {
        vec![Some(crate::reference::lu(&crate::reference::spd_matrix(
            self.n, DTYPE,
        )))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_runtime::interp::execute;

    fn check_tiles(ty: i64, tx: i64) {
        let mold = LuMold::new(ProblemSize::Mini); // n = 40
        let f = build_lu(mold.n(), ty, tx);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[0].clone().expect("A");
        assert!(
            args[0].allclose(&expect, 1e-9, 1e-9),
            "tiles ({ty},{tx}): max diff {}",
            args[0].max_abs_diff(&expect)
        );
    }

    #[test]
    fn untiled_matches_reference() {
        check_tiles(1, 1);
    }

    #[test]
    fn divisible_tiles_match_reference() {
        check_tiles(8, 5); // 8 | 40, 5 | 40
    }

    #[test]
    fn nondivisible_tiles_match_reference() {
        check_tiles(7, 3); // guards handle ragged edges
    }

    #[test]
    fn full_matrix_tile_matches_reference() {
        check_tiles(40, 40);
    }

    #[test]
    fn mold_space_matches_table1() {
        assert_eq!(LuMold::new(ProblemSize::Large).space().size(), Some(400));
        assert_eq!(
            LuMold::new(ProblemSize::ExtraLarge).space().size(),
            Some(576)
        );
    }

    #[test]
    fn instantiate_via_configuration() {
        let mold = LuMold::new(ProblemSize::Mini);
        let cfg = Configuration::new(
            vec!["P0".into(), "P1".into()],
            vec![
                configspace::ParamValue::Int(8),
                configspace::ParamValue::Int(5),
            ],
        );
        let f = mold.instantiate(&cfg);
        assert_eq!(f.params.len(), 1, "LU factors in place");
        assert_eq!(f.body.loop_depth(), 5); // io, jo, ii, ji, k
    }
}
