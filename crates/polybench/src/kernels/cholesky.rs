//! Cholesky decomposition as a tiled PolyBench code mold.
//!
//! Same construction as [`crate::kernels::lu`]: the C benchmark's
//! `(i, j, k)` loop structure with the reduction innermost, tiled on
//! `i`/`j` by the paper's two parameters:
//!
//! ```text
//! for io, jo, ii, ji (i tiled by P0, j tiled by P1):
//!   if j < i:                       # off-diagonal of L
//!     for k in 0..j:  A[i,j] -= A[i,k] * A[j,k]
//!     A[i,j] /= A[j,j]
//!   else if j == i:                 # diagonal
//!     for k in 0..i:  A[i,i] -= A[i,k] * A[i,k]
//!     A[i,i] = sqrt(A[i,i])
//! ```
//!
//! Element `(i, j)` depends only on componentwise-smaller elements, so
//! block-row-major execution is valid for any tiling (verified against
//! the reference in this module's tests). The strict upper triangle is
//! untouched, as in PolyBench.

use crate::datasets::{factorization_n, ProblemSize};
use crate::molds::CodeMold;
use crate::spaces::{space_for_mode, SpaceMode};
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_te::ops::{cmp, sqrt};
use tvm_te::{placeholder, DType, PrimExpr};
use tvm_tir::analyze::Diagnostic;
use tvm_tir::builder::{if_else, seq, ser, store, when, FuncBuilder};
use tvm_tir::PrimFunc;

/// Element type (`DATA_TYPE double`).
pub const DTYPE: DType = DType::F64;

/// Build the tiled PolyBench Cholesky function for order `n` with tile
/// sizes `(ty, tx)` on the `i`/`j` loops.
pub fn build_cholesky(n: usize, ty: i64, tx: i64) -> PrimFunc {
    assert!(ty >= 1 && tx >= 1);
    let n_i = n as i64;
    let a = placeholder([n, n], DTYPE, "A");
    let mut fb = FuncBuilder::new("cholesky");
    let ab = fb.param(&a);

    let tiles_y = n_i.div_euclid(ty) + i64::from(n_i % ty != 0);
    let tiles_x = n_i.div_euclid(tx) + i64::from(n_i % tx != 0);

    let body = ser("io", tiles_y, |io| {
        let (a, ab) = (a.clone(), ab.clone());
        ser("jo", tiles_x, move |jo| {
            let (a, ab) = (a.clone(), ab.clone());
            let io = io.clone();
            ser("ii", ty, move |ii| {
                let (a, ab) = (a.clone(), ab.clone());
                let (io, jo) = (io.clone(), jo.clone());
                ser("ji", tx, move |ji| {
                    let i = io * ty + ii.clone();
                    let j = jo * tx + ji;
                    let in_bounds = cmp::and(
                        cmp::lt(i.clone(), PrimExpr::from(n_i)),
                        cmp::lt(j.clone(), PrimExpr::from(n_i)),
                    );
                    // Off-diagonal of L (j < i).
                    let (ic, jc) = (i.clone(), j.clone());
                    let (a1, ab1) = (a.clone(), ab.clone());
                    let off_reduce = ser("k", n_i, move |k| {
                        when(
                            cmp::lt(k.clone(), jc.clone()),
                            store(
                                &ab1,
                                &[ic.clone(), jc.clone()],
                                a1.at(&[ic.clone(), jc.clone()])
                                    - a1.at(&[ic.clone(), k.clone()]) * a1.at(&[jc.clone(), k]),
                            ),
                        )
                    });
                    let off_div = store(
                        &ab,
                        &[i.clone(), j.clone()],
                        a.at(&[i.clone(), j.clone()]) / a.at(&[j.clone(), j.clone()]),
                    );
                    // Diagonal (j == i).
                    let ic = i.clone();
                    let (a2, ab2) = (a.clone(), ab.clone());
                    let diag_reduce = ser("k", n_i, move |k| {
                        when(
                            cmp::lt(k.clone(), ic.clone()),
                            store(
                                &ab2,
                                &[ic.clone(), ic.clone()],
                                a2.at(&[ic.clone(), ic.clone()])
                                    - a2.at(&[ic.clone(), k.clone()])
                                        * a2.at(&[ic.clone(), k.clone()]),
                            ),
                        )
                    });
                    let diag_sqrt = store(
                        &ab,
                        &[i.clone(), i.clone()],
                        sqrt(a.at(&[i.clone(), i.clone()])),
                    );
                    when(
                        in_bounds,
                        if_else(
                            cmp::lt(j.clone(), i.clone()),
                            seq([off_reduce, off_div]),
                            when(cmp::eq(j, i), seq([diag_reduce, diag_sqrt])),
                        ),
                    )
                })
            })
        })
    });
    fb.build(body)
}

/// The Cholesky code mold.
pub struct CholeskyMold {
    size: ProblemSize,
    mode: SpaceMode,
    n: usize,
    space: ConfigSpace,
}

impl CholeskyMold {
    /// Paper-space mold for a problem-size class.
    pub fn new(size: ProblemSize) -> CholeskyMold {
        CholeskyMold::with_mode(size, SpaceMode::Paper)
    }

    /// Mold for a problem-size class under a space mode. Aggressive mode
    /// widens the tile lists (non-divisor tails are already guarded by
    /// the builder); tile factor 0 is denied by the prelint.
    pub fn with_mode(size: ProblemSize, mode: SpaceMode) -> CholeskyMold {
        CholeskyMold {
            size,
            mode,
            n: factorization_n(size),
            space: space_for_mode(crate::datasets::KernelName::Cholesky, size, mode),
        }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl CodeMold for CholeskyMold {
    fn name(&self) -> &str {
        "cholesky"
    }

    fn size(&self) -> ProblemSize {
        self.size
    }

    fn mode(&self) -> SpaceMode {
        self.mode
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn prelint(&self, config: &Configuration) -> Vec<Diagnostic> {
        super::tile_prelint(config.int("P0"), config.int("P1"))
    }

    fn instantiate(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the cholesky space"
        );
        build_cholesky(self.n, config.int("P0"), config.int("P1"))
    }

    fn init_args(&self) -> Vec<NDArray> {
        vec![crate::reference::spd_matrix(self.n, DTYPE)]
    }

    fn reference_args(&self) -> Vec<Option<NDArray>> {
        vec![Some(crate::reference::cholesky(
            &crate::reference::spd_matrix(self.n, DTYPE),
        ))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_runtime::interp::execute;

    fn check_tiles(ty: i64, tx: i64) {
        let mold = CholeskyMold::new(ProblemSize::Mini); // n = 40
        let f = build_cholesky(mold.n(), ty, tx);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[0].clone().expect("A");
        assert!(
            args[0].allclose(&expect, 1e-9, 1e-9),
            "tiles ({ty},{tx}): max diff {}",
            args[0].max_abs_diff(&expect)
        );
    }

    #[test]
    fn untiled_matches_reference() {
        check_tiles(1, 1);
    }

    #[test]
    fn divisible_tiles_match_reference() {
        check_tiles(10, 4);
    }

    #[test]
    fn nondivisible_tiles_match_reference() {
        check_tiles(9, 7);
    }

    #[test]
    fn lower_triangle_factor_upper_untouched() {
        let mold = CholeskyMold::new(ProblemSize::Mini);
        let f = build_cholesky(mold.n(), 5, 5);
        let input = mold.init_args()[0].clone();
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let n = mold.n();
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(
                    args[0].get(&[i, j]),
                    input.get(&[i, j]),
                    "upper entry ({i},{j}) must be untouched"
                );
            }
        }
    }

    #[test]
    fn mold_space_matches_table1() {
        assert_eq!(
            CholeskyMold::new(ProblemSize::Large).space().size(),
            Some(400)
        );
        assert_eq!(
            CholeskyMold::new(ProblemSize::ExtraLarge).space().size(),
            Some(576)
        );
    }
}
