//! Kernel implementations, one module per PolyBench kernel.

pub mod cholesky;
pub mod gemm;
pub mod lu;
pub mod mm2;
pub mod mm3;
pub mod syrk;
pub mod trmm;

use configspace::Configuration;
use tvm_te::schedule::Schedule;
use tvm_te::{IterVar, Tensor};
use tvm_tir::analyze::{prelint::Prelint, Diagnostic};

/// Apply the paper's standard two-factor tile pattern to a matmul-like
/// stage: `yo, yi = split(y, ty); xo, xi = split(x, tx);
/// reorder(yo, xo, k, yi, xi)`.
pub(crate) fn tile_matmul_stage(s: &mut Schedule, t: &Tensor, k: &IterVar, ty: i64, tx: i64) {
    let (y, x) = (t.axis(0), t.axis(1));
    let (yo, yi) = s.split(t, &y, ty);
    let (xo, xi) = s.split(t, &x, tx);
    s.reorder(t, &[yo.clone(), xo, k.clone(), yi, xi]);
    // Distinct yo tiles write disjoint output rows, so the outer tile
    // loop is parallel; the dependence analyzer re-proves race freedom
    // per configuration before the VM dispatches it to the worker pool.
    s.parallel(t, &yo);
}

/// The aggressive-mode scheduling knobs shared by the TE matmul kernels
/// (`gemm`, `2mm`, `3mm`). Value 0 of every knob reproduces the paper
/// schedule; see `spaces::matmul_knobs` for the full semantics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatmulKnobs {
    /// Loop order: 0 `yo,xo,k,yi,xi`, 1 `xo,yo,k,xi,yi`, 2 `yo,xo,yi,xi,k`.
    pub order: i64,
    /// 0 none, 1 fuse the two outermost tile loops, 2 fuse `yo` with `k`.
    pub fuse: i64,
    /// Vector lanes on the innermost column axis (0 disables).
    pub vec: i64,
    /// 0 parallel outermost, 1 serial, 2 parallel the reduction axis.
    pub par: i64,
    /// 0 none, 1 unroll the inner row loop.
    pub unroll: i64,
}

impl MatmulKnobs {
    /// Read the knobs from a configuration; absent parameters (paper
    /// spaces) fall back to the neutral value 0.
    pub fn from_config(config: &Configuration) -> MatmulKnobs {
        let knob = |name: &str| config.get(name).and_then(|v| v.as_int()).unwrap_or(0);
        MatmulKnobs {
            order: knob("ORDER"),
            fuse: knob("FUSE"),
            vec: knob("VEC"),
            par: knob("PAR"),
            unroll: knob("UNROLL"),
        }
    }

    /// All knobs at their paper-equivalent value.
    pub fn neutral() -> MatmulKnobs {
        MatmulKnobs {
            order: 0,
            fuse: 0,
            vec: 0,
            par: 0,
            unroll: 0,
        }
    }

    /// True when every knob reproduces the paper schedule.
    pub fn is_neutral(&self) -> bool {
        self.order == 0 && self.fuse == 0 && self.vec == 0 && self.par == 0 && self.unroll == 0
    }
}

/// Declare the schedule facts of [`tile_matmul_stage_aggressive`] to a
/// prelint: the two tile splits, the optional vectorize of the column
/// tile, and the fuse adjacency (fusing `yo` with the reduction axis is
/// only adjacent under `ORDER == 1`). Callers accumulate facts for every
/// scheduled stage into one `Prelint`.
pub(crate) fn matmul_stage_prelint(p: &mut Prelint, ty: i64, tx: i64, kn: &MatmulKnobs) {
    p.split("y", ty).split("x", tx);
    if kn.vec > 0 && tx >= 1 {
        p.vectorize("x.inner", tx, kn.vec);
    }
    if kn.fuse == 2 {
        p.fuse("y.outer", "k", kn.order == 1);
    }
}

/// Prelint helper for the plain (knob-free) tile pattern.
pub(crate) fn tile_prelint(ty: i64, tx: i64) -> Vec<Diagnostic> {
    let mut p = Prelint::new();
    p.split("y", ty).split("x", tx);
    p.finish()
}

/// Aggressive variant of [`tile_matmul_stage`]: same two tile splits,
/// then the knobbed reorder/vectorize/fuse/parallel/unroll choices.
/// With neutral knobs this is exactly the paper schedule.
///
/// # Panics
/// On schedule facts [`matmul_stage_prelint`] denies: zero/negative tile
/// factors and non-adjacent fuses. (An over-wide vectorize instantiates —
/// it is the *analyzer/lowering* that handles masked lanes — so prelint
/// denial of `VEC > tx` is a policy choice enforced before this runs.)
pub(crate) fn tile_matmul_stage_aggressive(
    s: &mut Schedule,
    t: &Tensor,
    k: &IterVar,
    ty: i64,
    tx: i64,
    kn: &MatmulKnobs,
) {
    if kn.is_neutral() {
        tile_matmul_stage(s, t, k, ty, tx);
        return;
    }
    let (y, x) = (t.axis(0), t.axis(1));
    let (yo, yi) = s.split(t, &y, ty);
    let (xo, xi) = s.split(t, &x, tx);
    let order: Vec<IterVar> = match kn.order {
        1 => vec![
            xo.clone(),
            yo.clone(),
            k.clone(),
            xi.clone(),
            yi.clone(),
        ],
        2 => vec![
            yo.clone(),
            xo.clone(),
            yi.clone(),
            xi.clone(),
            k.clone(),
        ],
        _ => vec![
            yo.clone(),
            xo.clone(),
            k.clone(),
            yi.clone(),
            xi.clone(),
        ],
    };
    s.reorder(t, &order);
    if kn.vec > 0 {
        let (_xio, xii) = s.split(t, &xi, kn.vec);
        // Under ORDER == 2 the reduction sits inside the vector loop;
        // `legalize_vector_loops` demotes that to serial at lowering.
        s.vectorize(t, &xii);
    }
    let fused = match kn.fuse {
        1 => Some(s.fuse(t, &order[0].clone(), &order[1].clone())),
        2 => Some(s.fuse(t, &yo, k)), // panics unless adjacent (ORDER == 1)
        _ => None,
    };
    match kn.par {
        1 => {}
        2 => {
            // Parallelize the reduction-carrying axis: a write-write race
            // the dependence analyzer must deny (or, when the reduction
            // was fused into a space axis, fail to prove race-free so the
            // VM falls back to sequential execution).
            let target = if kn.fuse == 2 {
                fused.clone().expect("fuse == 2 produced a fused axis")
            } else {
                k.clone()
            };
            s.parallel(t, &target);
        }
        _ => {
            let outermost = match &fused {
                Some(f) if kn.fuse == 1 => f.clone(),
                _ => order[0].clone(),
            };
            s.parallel(t, &outermost);
        }
    }
    if kn.unroll == 1 {
        s.unroll(t, &yi);
    }
}
