//! Kernel implementations, one module per PolyBench kernel.

pub mod cholesky;
pub mod gemm;
pub mod lu;
pub mod mm2;
pub mod mm3;
pub mod syrk;
pub mod trmm;

use tvm_te::schedule::Schedule;
use tvm_te::{IterVar, Tensor};

/// Apply the paper's standard two-factor tile pattern to a matmul-like
/// stage: `yo, yi = split(y, ty); xo, xi = split(x, tx);
/// reorder(yo, xo, k, yi, xi)`.
pub(crate) fn tile_matmul_stage(s: &mut Schedule, t: &Tensor, k: &IterVar, ty: i64, tx: i64) {
    let (y, x) = (t.axis(0), t.axis(1));
    let (yo, yi) = s.split(t, &y, ty);
    let (xo, xi) = s.split(t, &x, tx);
    s.reorder(t, &[yo.clone(), xo, k.clone(), yi, xi]);
    // Distinct yo tiles write disjoint output rows, so the outer tile
    // loop is parallel; the dependence analyzer re-proves race freedom
    // per configuration before the VM dispatches it to the worker pool.
    s.parallel(t, &yo);
}
