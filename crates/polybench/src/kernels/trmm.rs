//! PolyBench `trmm` (`B = α·A·B`, `A` unit lower triangular) — extension
//! kernel with an *anti*-dependence: element `(i, j)` reads rows `k > i`
//! of `B` before they are overwritten.
//!
//! ```text
//! for io, jo, ii, ji (i tiled by P0, j tiled by P1):
//!   for k in i+1..M:  B[i,j] += A[k,i] * B[k,j]
//!   B[i,j] *= alpha
//! ```
//!
//! Row-major block order processes `(i, j)` before any `(k, j)` with
//! `k > i`, so the reads see the original values — valid for any tiling
//! (verified in tests).

use crate::datasets::{trmm_dims, ProblemSize};
use crate::molds::CodeMold;
use crate::spaces::{space_for_mode, SpaceMode};
use configspace::{ConfigSpace, Configuration};
use tvm_runtime::NDArray;
use tvm_te::ops::cmp;
use tvm_te::{placeholder, DType, PrimExpr};
use tvm_tir::analyze::Diagnostic;
use tvm_tir::builder::{seq, ser, store, when, FuncBuilder};
use tvm_tir::PrimFunc;

/// Element type (`DATA_TYPE double`).
pub const DTYPE: DType = DType::F64;
/// PolyBench's `alpha`.
pub const ALPHA: f64 = 1.5;

fn imm(v: f64) -> PrimExpr {
    PrimExpr::FloatImm(v, DTYPE)
}

/// Build tiled trmm for `A: m×m`, `B: m×n` with tiles `(ty, tx)`.
pub fn build_trmm(m: usize, n: usize, ty: i64, tx: i64) -> PrimFunc {
    assert!(ty >= 1 && tx >= 1);
    let (m_i, n_i) = (m as i64, n as i64);
    let a = placeholder([m, m], DTYPE, "A");
    let b = placeholder([m, n], DTYPE, "B");
    let mut fb = FuncBuilder::new("trmm");
    let _ab = fb.param(&a);
    let bb = fb.param(&b);

    let tiles_y = m_i.div_euclid(ty) + i64::from(m_i % ty != 0);
    let tiles_x = n_i.div_euclid(tx) + i64::from(n_i % tx != 0);

    let body = ser("io", tiles_y, |io| {
        let (a, b, bb) = (a.clone(), b.clone(), bb.clone());
        ser("jo", tiles_x, move |jo| {
            let (a, b, bb) = (a.clone(), b.clone(), bb.clone());
            let io = io.clone();
            ser("ii", ty, move |ii| {
                let (a, b, bb) = (a.clone(), b.clone(), bb.clone());
                let (io, jo) = (io.clone(), jo.clone());
                ser("ji", tx, move |ji| {
                    let i = io * ty + ii.clone();
                    let j = jo * tx + ji;
                    let in_bounds = cmp::and(
                        cmp::lt(i.clone(), PrimExpr::from(m_i)),
                        cmp::lt(j.clone(), PrimExpr::from(n_i)),
                    );
                    let (ic, jc) = (i.clone(), j.clone());
                    let (a1, b1, bb1) = (a.clone(), b.clone(), bb.clone());
                    let accumulate = ser("k", m_i, move |k| {
                        when(
                            cmp::gt(k.clone(), ic.clone()),
                            store(
                                &bb1,
                                &[ic.clone(), jc.clone()],
                                b1.at(&[ic.clone(), jc.clone()])
                                    + a1.at(&[k.clone(), ic.clone()]) * b1.at(&[k, jc.clone()]),
                            ),
                        )
                    });
                    let scale = store(
                        &bb,
                        &[i.clone(), j.clone()],
                        b.at(&[i.clone(), j.clone()]) * imm(ALPHA),
                    );
                    when(in_bounds, seq([accumulate, scale]))
                })
            })
        })
    });
    fb.build(body)
}

/// The trmm code mold.
pub struct TrmmMold {
    size: ProblemSize,
    mode: SpaceMode,
    dims: (usize, usize),
    space: ConfigSpace,
}

impl TrmmMold {
    /// Paper-space mold for a problem-size class.
    pub fn new(size: ProblemSize) -> TrmmMold {
        TrmmMold::with_mode(size, SpaceMode::Paper)
    }

    /// Mold for a problem-size class under a space mode. Aggressive mode
    /// widens the tile lists (non-divisor tails are already guarded by
    /// the builder); tile factor 0 is denied by the prelint.
    pub fn with_mode(size: ProblemSize, mode: SpaceMode) -> TrmmMold {
        TrmmMold {
            size,
            mode,
            dims: trmm_dims(size),
            space: space_for_mode(crate::datasets::KernelName::Trmm, size, mode),
        }
    }
}

impl CodeMold for TrmmMold {
    fn name(&self) -> &str {
        "trmm"
    }

    fn size(&self) -> ProblemSize {
        self.size
    }

    fn mode(&self) -> SpaceMode {
        self.mode
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn prelint(&self, config: &Configuration) -> Vec<Diagnostic> {
        super::tile_prelint(config.int("P0"), config.int("P1"))
    }

    fn instantiate(&self, config: &Configuration) -> PrimFunc {
        assert!(
            self.space.validate(config),
            "configuration {config} is not in the trmm space"
        );
        let (m, n) = self.dims;
        build_trmm(m, n, config.int("P0"), config.int("P1"))
    }

    fn init_args(&self) -> Vec<NDArray> {
        let (m, n) = self.dims;
        let a = NDArray::from_fn(&[m, m], DTYPE, |i| {
            if i[1] < i[0] {
                ((i[0] + i[1]) % m) as f64 / m as f64
            } else if i[0] == i[1] {
                1.0
            } else {
                0.0
            }
        });
        let b = NDArray::from_fn(&[m, n], DTYPE, |i| {
            ((n + i[0] - i[1]) % n) as f64 / n as f64
        });
        vec![a, b]
    }

    fn reference_args(&self) -> Vec<Option<NDArray>> {
        let args = self.init_args();
        let b = crate::reference::trmm(ALPHA, &args[0], &args[1]);
        vec![None, Some(b)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_runtime::interp::execute;

    fn check(ty: i64, tx: i64) {
        let mold = TrmmMold::new(ProblemSize::Mini);
        let (m, n) = mold.dims;
        let f = build_trmm(m, n, ty, tx);
        let mut args = mold.init_args();
        execute(&f, &mut args).expect("run");
        let expect = mold.reference_args()[1].clone().expect("B");
        assert!(
            args[1].allclose(&expect, 1e-9, 1e-9),
            "tiles ({ty},{tx}): max diff {}",
            args[1].max_abs_diff(&expect)
        );
    }

    #[test]
    fn untiled_matches_reference() {
        check(1, 1);
    }

    #[test]
    fn tiled_matches_reference() {
        check(4, 6);
    }

    #[test]
    fn nondivisible_tiles_match_reference() {
        check(3, 7);
    }

    #[test]
    fn full_tile_matches_reference() {
        let (m, n) = trmm_dims(ProblemSize::Mini);
        check(m as i64, n as i64);
    }
}
